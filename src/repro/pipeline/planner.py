"""Shape-bucketed corpus planning for fused execution.

Fused annotation (:mod:`repro.core.fused`) merges a group of tables into one
cross-table BP run; the merge pays off when the grouped tables have similar
shape, because their factor blocks then stack with little padding.  This
module owns that grouping: every table gets a **signature** — ``(rows,
columns, per-column numeric mask)`` — and the corpus is partitioned into one
bucket per signature.

Planning is deterministic *and* permutation-invariant: buckets are ordered
by signature, tables within a bucket by ``(table_id, corpus position)``, so
two permutations of the same corpus produce the same plan (up to the
recorded corpus positions, which exist so callers can restore the original
output order).  The hypothesis property tests in
``tests/pipeline/test_planner.py`` pin this down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.tables.model import Table
from repro.text.normalize import is_numeric_text

#: (n_rows, n_columns, per-column numeric mask)
Signature = tuple[int, int, tuple[bool, ...]]


def table_signature(table: Table) -> Signature:
    """The shape-bucket signature of one table.

    A column counts as numeric when every non-blank cell is numeric text —
    the same :func:`~repro.text.normalize.is_numeric_text` guard candidate
    generation uses, so a bucket's tables agree on which columns can carry
    entity variables at all.
    """
    mask = tuple(
        all(
            not cell.strip() or is_numeric_text(cell)
            for cell in table.column(column)
        )
        for column in range(table.n_columns)
    )
    return (table.n_rows, table.n_columns, mask)


@dataclass
class Bucket:
    """One shape class of the corpus: its signature and member tables."""

    signature: Signature
    #: (corpus position, table), ordered by (table_id, corpus position)
    entries: list[tuple[int, Table]]

    @property
    def size(self) -> int:
        return len(self.entries)


def plan_buckets(tables: Sequence[Table]) -> list[Bucket]:
    """Partition a corpus into shape buckets, deterministically.

    Bucket order follows the signatures' natural ordering; entries within a
    bucket are sorted by ``(table_id, corpus position)``, which makes the
    plan invariant under corpus permutation whenever table ids are unique.
    """
    groups: dict[Signature, list[tuple[int, Table]]] = {}
    for position, table in enumerate(tables):
        groups.setdefault(table_signature(table), []).append((position, table))
    plan: list[Bucket] = []
    for signature in sorted(groups):
        entries = sorted(
            groups[signature], key=lambda entry: (entry[1].table_id, entry[0])
        )
        plan.append(Bucket(signature=signature, entries=entries))
    return plan


def iter_bucket_chunks(
    plan: Iterable[Bucket], chunk_size: int
) -> Iterator[tuple[Signature, list[tuple[int, Table]]]]:
    """Split every bucket into work units of at most ``chunk_size`` tables.

    Chunking bounds the memory of one fused graph (and the payload shipped
    to a pool worker) the same way ``batch_size`` bounds per-table batches.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    for bucket in plan:
        for start in range(0, len(bucket.entries), chunk_size):
            yield bucket.signature, bucket.entries[start : start + chunk_size]
