"""The Appendix-C NP-hardness construction, made executable.

The paper proves inference in the full model NP-hard by reduction from graph
colouring: a K-colouring instance ``G = (V, A)`` becomes a single-row table
with one column per node, ``K`` types per node, and — for every arc — a
relation schema ``B_uv(T_uk, T_vk')`` for every pair of *distinct* colours,
each carrying a large potential π.  A K-colouring exists iff the annotation
objective reaches ``π · |A|``.

This module builds that instance concretely (catalog + table + weights) and
provides an exact brute-force optimiser, so tests can (a) verify the
reduction's iff property and (b) measure how message passing behaves on a
provably hard family.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.catalog.builder import CatalogBuilder
from repro.catalog.catalog import Catalog
from repro.tables.model import Table

#: The "suitably large potential" π of the construction.
PI = 10.0


@dataclass
class ColoringInstance:
    """A graph-colouring instance encoded as a table-annotation problem."""

    nodes: tuple[str, ...]
    arcs: tuple[tuple[str, str], ...]
    k: int
    catalog: Catalog
    table: Table

    def node_types(self, node: str) -> list[str]:
        return [f"type:{node}_{color}" for color in range(self.k)]

    def relation_id(self, u: str, v: str, cu: int, cv: int) -> str:
        return f"rel:{u}_{v}:{cu}_{cv}"

    # ------------------------------------------------------------------
    def objective(self, coloring: dict[str, int]) -> float:
        """Σ over arcs of π·[colors differ] — the annotation log-objective."""
        total = 0.0
        for u, v in self.arcs:
            if coloring[u] != coloring[v]:
                total += PI
        return total

    def optimum(self) -> tuple[dict[str, int], float]:
        """Exact maximum by enumeration (use on small instances only)."""
        best: dict[str, int] = {}
        best_score = float("-inf")
        for colors in itertools.product(range(self.k), repeat=len(self.nodes)):
            coloring = dict(zip(self.nodes, colors))
            score = self.objective(coloring)
            if score > best_score:
                best_score = score
                best = coloring
        return best, best_score

    def is_colorable(self) -> bool:
        """True iff a proper K-colouring exists (objective reaches π·|A|)."""
        _best, score = self.optimum()
        return score == PI * len(self.arcs)


def build_coloring_instance(
    arcs: list[tuple[str, str]],
    k: int,
    color_hints: dict[str, int] | None = None,
) -> ColoringInstance:
    """Encode ``(G, K)`` as a catalog plus a one-row table.

    Each node ``u`` gets one entity ``ent:u`` that is a direct instance of
    all ``K`` node types ``T_u0 .. T_u{K-1}`` — so the column's type choice
    *is* the colour choice.  Each arc contributes the ``K(K-1)`` "different
    colours" relation schemas with a ground tuple, so φ4's schema feature
    (and φ5's tuple feature) can reward exactly the properly-coloured pairs.

    ``color_hints`` optionally emits column headers naming one colour type
    per node.  The instance is otherwise fully symmetric under colour
    permutation, which makes *any* per-variable MAP decode ambiguous; a weak
    unary hint (φ2) lets max-product decode a consistent optimum without
    changing which objective values are achievable.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    nodes = tuple(sorted({endpoint for arc in arcs for endpoint in arc}))
    builder = CatalogBuilder(name=f"coloring-k{k}").without_root()
    for node in nodes:
        for color in range(k):
            builder.type(f"type:{node}_{color}", f"{node} color {color}")
        builder.entity(
            f"ent:{node}",
            lemmas=[f"node {node}"],
            types=[f"type:{node}_{color}" for color in range(k)],
        )
    for u, v in arcs:
        for cu in range(k):
            for cv in range(k):
                if cu == cv:
                    continue
                builder.relation(
                    f"rel:{u}_{v}:{cu}_{cv}",
                    f"type:{u}_{cu}",
                    f"type:{v}_{cv}",
                    lemmas=[f"{u}-{v} differs"],
                )
                builder.fact(f"rel:{u}_{v}:{cu}_{cv}", f"ent:{u}", f"ent:{v}")
    catalog = builder.build()
    headers: list[str | None]
    if color_hints:
        headers = [
            f"{node} color {color_hints[node]}" if node in color_hints else None
            for node in nodes
        ]
    else:
        headers = [None] * len(nodes)
    table = Table(
        table_id=f"coloring:{len(nodes)}n:{len(arcs)}a:k{k}",
        cells=[[f"node {node}" for node in nodes]],
        headers=headers,
        context="graph coloring reduction",
    )
    return ColoringInstance(
        nodes=nodes, arcs=tuple(arcs), k=k, catalog=catalog, table=table
    )
