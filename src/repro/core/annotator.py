"""High-level annotation facade.

:class:`TableAnnotator` wires together the candidate generator, feature
computer and the inference engines behind one call::

    annotator = TableAnnotator(catalog)
    annotation = annotator.annotate(table)

It also owns the timing instrumentation behind the Figure-7 reproduction:
every annotation records how long was spent probing the lemma index and
computing similarities (``candidate_seconds``) versus running message passing
(``inference_seconds``) — the paper reports roughly 80% and <1% of total time
respectively.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass

from repro.catalog.catalog import Catalog
from repro.core.annotation import TableAnnotation
from repro.core.baselines import BaselineResult, LCAAnnotator, MajorityAnnotator
from repro.core.candidates import CANDIDATE_ENGINES, CandidateGenerator
from repro.core.candidates_batched import (
    BatchedCandidateEngine,
    BatchedFeatureComputer,
)
from repro.core.inference import InferenceConfig, annotate_collective
from repro.core.model import AnnotationModel, default_model
from repro.core.problem import (
    AnnotationProblem,
    FeatureComputer,
    build_problem,
)
from repro.core.simple_inference import annotate_simple
from repro.tables.model import Table

#: corpus fusion modes: "off" annotates table by table; "bucket" groups
#: shape-compatible tables into cross-table fused BP runs (see
#: :mod:`repro.core.fused` and :mod:`repro.pipeline.planner`)
FUSION_MODES = ("off", "bucket")


@dataclass
class AnnotatorConfig:
    """Configuration of the full annotation pipeline."""

    top_k_entities: int = 8
    max_type_candidates: int = 64
    max_column_pairs: int = 12
    max_iterations: int = 10
    tolerance: float = 1e-5
    damping: float = 0.0
    #: False disables bcc'/φ4/φ5 — the polynomial special case (Section 4.4.1)
    with_relations: bool = True
    #: "paper" (Figure-11 blocks) or "flooding" (generic synchronous BP)
    schedule: str = "paper"
    #: "batched" (vectorised block updates, default) or "scalar" (per-edge
    #: reference engine) — see :mod:`repro.graph.compiled`
    engine: str = "batched"
    #: "batched" (array-backed candidate generation + feature assembly,
    #: default) or "scalar" (per-cell reference) — see
    #: :mod:`repro.core.candidates_batched`
    candidate_engine: str = "batched"
    #: "off" (per-table annotation, default) or "bucket" (corpus-level fused
    #: execution over shape buckets) — see :mod:`repro.core.fused`; only the
    #: pipeline's corpus entry points act on this knob
    fusion: str = "off"

    def inference_config(self) -> InferenceConfig:
        return InferenceConfig(
            max_iterations=self.max_iterations,
            tolerance=self.tolerance,
            damping=self.damping,
            with_relations=self.with_relations,
            schedule=self.schedule,
            engine=self.engine,
        )

    def to_dict(self) -> dict:
        """JSON-ready view (used by :class:`repro.api.SessionConfig`)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "AnnotatorConfig":
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown AnnotatorConfig field(s): {', '.join(unknown)}"
            )
        return cls(**payload)


@dataclass
class AnnotationTiming:
    """Wall-clock breakdown of one table's annotation (Figure 7)."""

    table_id: str
    total_seconds: float
    candidate_seconds: float
    inference_seconds: float
    n_rows: int = 0
    n_columns: int = 0

    @property
    def candidate_fraction(self) -> float:
        return self.candidate_seconds / self.total_seconds if self.total_seconds else 0.0

    @property
    def inference_fraction(self) -> float:
        return self.inference_seconds / self.total_seconds if self.total_seconds else 0.0


class TableAnnotator:
    """Annotates tables against a catalog with the collective model."""

    def __init__(
        self,
        catalog: Catalog,
        model: AnnotationModel | None = None,
        config: AnnotatorConfig | None = None,
        candidate_generator: CandidateGenerator | BatchedCandidateEngine | None = None,
    ) -> None:
        self.catalog = catalog
        self.model = model if model is not None else default_model()
        self.config = config if config is not None else AnnotatorConfig()
        if self.config.candidate_engine not in CANDIDATE_ENGINES:
            raise ValueError(
                f"unknown candidate engine: {self.config.candidate_engine!r}"
            )
        if self.config.fusion not in FUSION_MODES:
            raise ValueError(f"unknown fusion mode: {self.config.fusion!r}")
        # a prebuilt generator skips the lemma-index build — the serving
        # layer passes one loaded straight from an artifact bundle, and
        # per-engine pipelines share one generator (hence one lemma index)
        generator = (
            candidate_generator
            if candidate_generator is not None
            else CandidateGenerator(
                catalog,
                top_k_entities=self.config.top_k_entities,
                max_type_candidates=self.config.max_type_candidates,
            )
        )
        # the candidate_engine knob mirrors the BP engine split: "batched"
        # wraps the scalar generator in the array-backed engine (reusing
        # prebuilt interned tables when one was passed in), "scalar" keeps —
        # or unwraps back to — the per-cell reference path
        if self.config.candidate_engine == "batched":
            if not isinstance(generator, BatchedCandidateEngine):
                generator = BatchedCandidateEngine(generator)
            self.candidate_generator = generator
            self.features: FeatureComputer = BatchedFeatureComputer(
                catalog, self.model.mode, generator, engine=generator
            )
        else:
            if isinstance(generator, BatchedCandidateEngine):
                generator = generator.scalar_generator
            self.candidate_generator = generator
            self.features = FeatureComputer(catalog, self.model.mode, generator)
        #: optional LRU for compiled factor graphs (set by the pipeline);
        #: lets recurring (table, model) pairs skip potential construction
        self.compiled_cache = None
        self.timings: list[AnnotationTiming] = []

    # ------------------------------------------------------------------
    # problems
    # ------------------------------------------------------------------
    def build_problem(self, table: Table) -> AnnotationProblem:
        """Candidate spaces + feature caches for one table."""
        return build_problem(
            table,
            self.candidate_generator,
            self.features,
            max_column_pairs=self.config.max_column_pairs,
        )

    # ------------------------------------------------------------------
    # annotation
    # ------------------------------------------------------------------
    def annotate(self, table: Table) -> TableAnnotation:
        """Collective annotation of one table (records timing)."""
        start = time.perf_counter()
        problem = self.build_problem(table)
        after_candidates = time.perf_counter()
        if self.config.with_relations:
            annotation = annotate_collective(
                problem,
                self.model,
                self.config.inference_config(),
                compiled_cache=self.compiled_cache,
            )
        else:
            annotation = annotate_simple(problem, self.model)
        end = time.perf_counter()
        timing = AnnotationTiming(
            table_id=table.table_id,
            total_seconds=end - start,
            candidate_seconds=after_candidates - start,
            inference_seconds=end - after_candidates,
            n_rows=table.n_rows,
            n_columns=table.n_columns,
        )
        self.timings.append(timing)
        annotation.diagnostics["timing"] = timing
        return annotation

    def annotate_simple(
        self, table: Table, unique_columns: tuple[int, ...] = ()
    ) -> TableAnnotation:
        """Figure-2 exact inference (no relation variables).

        ``unique_columns`` applies the Section-4.4.1 primary-key constraint
        to those columns (all-different entity assignment).
        """
        problem = self.build_problem(table)
        return annotate_simple(
            problem, self.model, unique_columns=unique_columns, features=self.features
        )

    def annotate_problem(self, problem: AnnotationProblem) -> TableAnnotation:
        """Collective inference on a pre-built problem (learner fast path)."""
        if self.config.with_relations:
            return annotate_collective(
                problem,
                self.model,
                self.config.inference_config(),
                compiled_cache=self.compiled_cache,
            )
        return annotate_simple(problem, self.model)

    def marginals(self, table: Table) -> dict[str, dict[str | None, float]]:
        """Posterior label marginals per variable (sum-product extension).

        See :func:`repro.core.inference.annotation_marginals`.
        """
        from repro.core.inference import annotation_marginals

        problem = self.build_problem(table)
        return annotation_marginals(
            problem, self.model, self.config.inference_config()
        )

    # ------------------------------------------------------------------
    # baselines sharing this annotator's caches
    # ------------------------------------------------------------------
    def lca_baseline(self) -> LCAAnnotator:
        return LCAAnnotator(self.features, self.model)

    def majority_baseline(self, threshold_percent: float = 50.0) -> MajorityAnnotator:
        return MajorityAnnotator(
            self.features, self.model, threshold_percent=threshold_percent
        )

    def annotate_with_baseline(
        self, table: Table, method: str, threshold_percent: float = 50.0
    ) -> BaselineResult:
        """Run a named baseline ("lca" or "majority") on one table."""
        problem = self.build_problem(table)
        if method == "lca":
            return self.lca_baseline().annotate(problem)
        if method == "majority":
            return self.majority_baseline(threshold_percent).annotate(problem)
        raise ValueError(f"unknown baseline method: {method!r}")
