"""Annotation result objects.

``None`` as a label uniformly means the paper's ``na`` ("no annotation").
Scores are log-belief margins from inference: the gap between the chosen
label and the runner-up, usable for ranking and confidence thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class CellAnnotation:
    """Entity annotation of one cell."""

    row: int
    column: int
    entity_id: str | None
    score: float = 0.0


@dataclass(frozen=True)
class ColumnAnnotation:
    """Type annotation of one column."""

    column: int
    type_id: str | None
    score: float = 0.0


@dataclass(frozen=True)
class RelationAnnotation:
    """Relation annotation of an ordered column pair ``(left < right)``.

    ``label`` is a relation id, optionally carrying the ``^-1`` suffix when
    the relation reads right-to-left across the pair (see
    :mod:`repro.tables.generator`); ``None`` means na.
    """

    left_column: int
    right_column: int
    label: str | None
    score: float = 0.0


@dataclass
class TableAnnotation:
    """Full annotation of one table plus inference diagnostics."""

    table_id: str
    cells: dict[tuple[int, int], CellAnnotation] = field(default_factory=dict)
    columns: dict[int, ColumnAnnotation] = field(default_factory=dict)
    relations: dict[tuple[int, int], RelationAnnotation] = field(default_factory=dict)
    diagnostics: dict[str, Any] = field(default_factory=dict)

    def entity_of(self, row: int, column: int) -> str | None:
        annotation = self.cells.get((row, column))
        return annotation.entity_id if annotation else None

    def type_of(self, column: int) -> str | None:
        annotation = self.columns.get(column)
        return annotation.type_id if annotation else None

    def relation_of(self, left: int, right: int) -> str | None:
        annotation = self.relations.get((left, right))
        return annotation.label if annotation else None

    def columns_with_type(self, type_id: str) -> list[int]:
        """Columns annotated with exactly ``type_id`` (used by search)."""
        return [
            column
            for column, annotation in self.columns.items()
            if annotation.type_id == type_id
        ]
