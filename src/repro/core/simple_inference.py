"""Exact polynomial inference for the relation-free special case.

This is the paper's Figure 2: without ``bcc'`` variables and φ4/φ5, the
objective (2) decomposes per column — fix a column type ``T``, then each
cell's best entity is independent:

    A_T = φ2(c, T) + Σ_r max_E [ φ1(r, c, E) + φ3(T, E) ]      (log space)

and the best column label is ``argmax_T A_T`` (including ``T = na``, whose
φ2/φ3 contributions are zero).  This module is both a fast path and the
exactness oracle the message-passing tests compare against.
"""

from __future__ import annotations

import numpy as np

from repro.core.annotation import (
    CellAnnotation,
    ColumnAnnotation,
    TableAnnotation,
)
from repro.core.model import AnnotationModel
from repro.core.problem import NA, AnnotationProblem


def annotate_simple(
    problem: AnnotationProblem,
    model: AnnotationModel,
    unique_columns: tuple[int, ...] = (),
    features=None,
) -> TableAnnotation:
    """Run Figure-2 inference; returns annotations without relations.

    ``unique_columns`` enforces the paper's primary-key variant
    (Section 4.4.1): after the column type is chosen, cell entities in those
    columns are assigned jointly under an all-different constraint via the
    Hungarian algorithm (:mod:`repro.core.constraints`).  Requires the
    ``features`` computer used to build the problem.
    """
    if unique_columns and features is None:
        raise ValueError("unique_columns requires the FeatureComputer")
    annotation = TableAnnotation(table_id=problem.table.table_id)
    # Cells in columns without a type variable still get their best entity.
    chosen_cells: dict[tuple[int, int], tuple[str | None, float]] = {}

    for column_index, space in problem.columns.items():
        n_types = len(space.labels)  # includes na at index 0
        type_scores = np.zeros(n_types)
        type_scores[1:] = space.f2 @ model.w2
        # per (type, row) best entity indices, to recall after argmax over T
        best_entity_index: dict[int, np.ndarray] = {}
        for row, f3 in space.f3.items():
            cell = problem.cells[(row, column_index)]
            unary = np.concatenate(([0.0], cell.f1 @ model.w1))
            pairwise = np.zeros((n_types, len(cell.labels)))
            pairwise[1:, 1:] = f3 @ model.w3
            combined = pairwise + unary[None, :]
            best = combined.argmax(axis=1)
            best_entity_index[row] = best
            type_scores += combined[np.arange(n_types), best]
        chosen_type_index = int(type_scores.argmax())
        runner_up = float(np.partition(type_scores, -2)[-2]) if n_types > 1 else 0.0
        annotation.columns[column_index] = ColumnAnnotation(
            column=column_index,
            type_id=space.labels[chosen_type_index],
            score=float(type_scores[chosen_type_index]) - runner_up,
        )
        if column_index in unique_columns:
            from repro.core.constraints import assign_unique_entities

            assigned = assign_unique_entities(
                problem,
                model,
                features,
                column_index,
                space.labels[chosen_type_index],
            )
            for row, entity_id in assigned.items():
                chosen_cells[(row, column_index)] = (entity_id, 0.0)
            continue
        for row, best in best_entity_index.items():
            cell = problem.cells[(row, column_index)]
            entity_index = int(best[chosen_type_index])
            unary = np.concatenate(([0.0], cell.f1 @ model.w1))
            pairwise = np.zeros((n_types, len(cell.labels)))
            pairwise[1:, 1:] = space.f3[row] @ model.w3
            combined = pairwise[chosen_type_index] + unary
            margin = _margin(combined, entity_index)
            chosen_cells[(row, column_index)] = (cell.labels[entity_index], margin)

    # Cells in columns that never got a type variable: best φ1 alone.
    for (row, column_index), cell in problem.cells.items():
        if (row, column_index) in chosen_cells:
            continue
        unary = np.concatenate(([0.0], cell.f1 @ model.w1))
        entity_index = int(unary.argmax())
        chosen_cells[(row, column_index)] = (
            cell.labels[entity_index],
            _margin(unary, entity_index),
        )

    for (row, column_index), (entity_id, score) in chosen_cells.items():
        annotation.cells[(row, column_index)] = CellAnnotation(
            row=row, column=column_index, entity_id=entity_id, score=score
        )
    # Columns with no type variable are explicitly na.
    for column_index in range(problem.table.n_columns):
        if column_index not in annotation.columns:
            annotation.columns[column_index] = ColumnAnnotation(
                column=column_index, type_id=NA, score=0.0
            )
    annotation.diagnostics["method"] = "simple"
    return annotation


def _margin(scores: np.ndarray, chosen: int) -> float:
    """Gap between the chosen score and the best alternative."""
    if scores.shape[0] < 2:
        return float(scores[chosen])
    others = np.delete(scores, chosen)
    return float(scores[chosen] - others.max())
