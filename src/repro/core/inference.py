"""Collective inference: the paper's Figure-11 message-passing schedule.

Inference in the full model (1) is NP-hard (Appendix C), so the paper runs
max-product message passing on the factor graph with a fixed block schedule:

1. entities → φ3 → types, then types → φ3 → entities (per column),
2. entities → φ5 → relations, then relations → φ5 → entities (per pair/row),
3. types → φ4 → relations, then relations → φ4 → types (per pair),

repeated until messages converge ("in practice ... within three iterations").
When the graph has no relation variables the schedule degenerates to the
exact Figure-2 computation, which the tests verify against
:mod:`repro.core.simple_inference`.

Two engines run the schedule: the per-edge **scalar** reference
(:class:`~repro.graph.bp.MaxProductBP`, driven by the explicit loop below)
and the **batched** engine (:class:`~repro.graph.compiled.BatchedMaxProductBP`,
the default), which executes each schedule half-step as vectorised block
updates over a :class:`~repro.graph.compiled.CompiledFactorGraph`.  The two
produce identical MAP assignments (tests assert beliefs agree to 1e-9).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.annotation import (
    CellAnnotation,
    ColumnAnnotation,
    RelationAnnotation,
    TableAnnotation,
)
from repro.core.model import AnnotationModel
from repro.core.problem import (
    NA,
    AnnotationProblem,
    build_compiled_graph,
    build_factor_graph,
)
from repro.graph.bp import MaxProductBP, SumProductBP
from repro.graph.compiled import BatchedMaxProductBP, CompiledFactorGraph

ENGINES = ("batched", "scalar")


@dataclass
class InferenceConfig:
    """Knobs of the message-passing run."""

    max_iterations: int = 10
    tolerance: float = 1e-5
    damping: float = 0.0
    with_relations: bool = True
    #: "paper" follows the Figure-11 block schedule; "flooding" runs the
    #: generic synchronous schedule (ablation of DESIGN.md decision 4)
    schedule: str = "paper"
    #: "batched" runs block-vectorised message passing over a
    #: :class:`~repro.graph.compiled.CompiledFactorGraph`; "scalar" runs the
    #: per-edge reference engine.  Both decode the same MAP assignment.
    engine: str = "batched"


def annotate_collective(
    problem: AnnotationProblem,
    model: AnnotationModel,
    config: InferenceConfig | None = None,
    unary_bonus: dict[str, np.ndarray] | None = None,
    compiled_cache=None,
) -> TableAnnotation:
    """Run collective inference and decode a full table annotation.

    ``unary_bonus`` adds per-label terms to named variables before message
    passing — the structured learner uses it for loss-augmented (Hamming
    cost) inference; ordinary annotation leaves it ``None``.

    ``compiled_cache`` (anything with ``get``/``put``) memoises the compiled
    factor graph across repeated (table, model) pairs for the batched engine;
    the annotation pipeline attaches one so corpora with recurring tables
    skip potential construction entirely.  Ignored when ``unary_bonus`` is
    set (the bonus perturbs the potentials) or the engine is "scalar".
    """
    config = config if config is not None else InferenceConfig()
    if config.engine not in ENGINES:
        raise ValueError(f"unknown engine: {config.engine!r}")
    if config.schedule not in ("paper", "flooding"):
        raise ValueError(f"unknown schedule: {config.schedule!r}")

    if config.engine == "batched":
        if unary_bonus:
            graph = build_factor_graph(
                problem, model, with_relations=config.with_relations
            )
            _apply_unary_bonus(graph, unary_bonus)
            compiled = CompiledFactorGraph(graph)
        else:
            compiled = build_compiled_graph(
                problem,
                model,
                with_relations=config.with_relations,
                cache=compiled_cache,
            )
        engine = BatchedMaxProductBP(compiled, damping=config.damping)
        if config.schedule == "flooding":
            result = engine.run_flooding(
                max_iterations=config.max_iterations, tolerance=config.tolerance
            )
            return _decode(problem, engine, result.iterations, result.converged)
        iterations, converged = engine.run_paper_schedule(
            max_iterations=config.max_iterations, tolerance=config.tolerance
        )
        return _decode(problem, engine, iterations, converged)

    graph = build_factor_graph(
        problem, model, with_relations=config.with_relations
    )
    _apply_unary_bonus(graph, unary_bonus)
    engine = MaxProductBP(graph, damping=config.damping)
    if config.schedule == "flooding":
        result = engine.run_flooding(
            max_iterations=config.max_iterations, tolerance=config.tolerance
        )
        return _decode(problem, engine, result.iterations, result.converged)

    iterations, converged = run_scalar_paper_schedule(
        engine, max_iterations=config.max_iterations, tolerance=config.tolerance
    )
    return _decode(problem, engine, iterations, converged)


def run_scalar_paper_schedule(
    engine: MaxProductBP, max_iterations: int = 10, tolerance: float = 1e-5
) -> tuple[int, bool]:
    """Drive a scalar engine through the Figure-11 block schedule.

    This per-edge loop is the reference the batched engine's
    ``run_paper_schedule`` must reproduce (the equivalence tests step both
    and compare message trajectories).  Returns ``(iterations, converged)``.
    """
    graph = engine.graph
    phi3_edges: list[tuple[str, str, str]] = []  # (factor, type_var, entity_var)
    phi5_edges: list[tuple[str, str, str, str]] = []  # (factor, b, e_left, e_right)
    phi4_edges: list[tuple[str, str, str, str]] = []  # (factor, b, t_left, t_right)
    for factor in graph.factors.values():
        if factor.kind == "phi3":
            phi3_edges.append((factor.name, factor.variables[0], factor.variables[1]))
        elif factor.kind == "phi5":
            phi5_edges.append(
                (factor.name, factor.variables[0], factor.variables[1], factor.variables[2])
            )
        elif factor.kind == "phi4":
            phi4_edges.append(
                (factor.name, factor.variables[0], factor.variables[1], factor.variables[2])
            )

    iterations = 0
    converged = False
    for iterations in range(1, max_iterations + 1):  # noqa: B007 - read after loop
        delta = 0.0
        # Block 1: entities <-> types through phi3.
        for factor_name, type_var, entity_var in phi3_edges:
            delta = max(delta, engine.update_var_to_factor(entity_var, factor_name))
            delta = max(delta, engine.update_factor_to_var(factor_name, type_var))
        for factor_name, type_var, entity_var in phi3_edges:
            delta = max(delta, engine.update_var_to_factor(type_var, factor_name))
            delta = max(delta, engine.update_factor_to_var(factor_name, entity_var))
        # Block 2: entities <-> relations through phi5.
        for factor_name, b_var, left_var, right_var in phi5_edges:
            delta = max(delta, engine.update_var_to_factor(left_var, factor_name))
            delta = max(delta, engine.update_var_to_factor(right_var, factor_name))
            delta = max(delta, engine.update_factor_to_var(factor_name, b_var))
        for factor_name, b_var, left_var, right_var in phi5_edges:
            delta = max(delta, engine.update_var_to_factor(b_var, factor_name))
            delta = max(delta, engine.update_factor_to_var(factor_name, left_var))
            delta = max(delta, engine.update_factor_to_var(factor_name, right_var))
        # Block 3: types <-> relations through phi4.
        for factor_name, b_var, left_var, right_var in phi4_edges:
            delta = max(delta, engine.update_var_to_factor(left_var, factor_name))
            delta = max(delta, engine.update_var_to_factor(right_var, factor_name))
            delta = max(delta, engine.update_factor_to_var(factor_name, b_var))
        for factor_name, b_var, left_var, right_var in phi4_edges:
            delta = max(delta, engine.update_var_to_factor(b_var, factor_name))
            delta = max(delta, engine.update_factor_to_var(factor_name, left_var))
            delta = max(delta, engine.update_factor_to_var(factor_name, right_var))
        if delta < tolerance:
            converged = True
            break
    return iterations, converged


def _apply_unary_bonus(
    graph, unary_bonus: dict[str, np.ndarray] | None
) -> None:
    if not unary_bonus:
        return
    for variable_name, bonus in unary_bonus.items():
        variable = graph.variables.get(variable_name)
        if variable is not None:
            variable.unary = variable.unary + np.asarray(bonus, dtype=float)


def _decode(
    problem: AnnotationProblem,
    engine: MaxProductBP | BatchedMaxProductBP,
    iterations: int,
    converged: bool,
) -> TableAnnotation:
    annotation = TableAnnotation(table_id=problem.table.table_id)
    graph = engine.graph
    for space in problem.cells.values():
        if space.variable_name in graph.variables:
            belief = engine.belief(space.variable_name)
            index = int(np.argmax(belief))
            annotation.cells[(space.row, space.column)] = CellAnnotation(
                row=space.row,
                column=space.column,
                entity_id=space.labels[index],
                score=_belief_margin(belief, index),
            )
    for space in problem.columns.values():
        belief = engine.belief(space.variable_name)
        index = int(np.argmax(belief))
        annotation.columns[space.column] = ColumnAnnotation(
            column=space.column,
            type_id=space.labels[index],
            score=_belief_margin(belief, index),
        )
    for column_index in range(problem.table.n_columns):
        if column_index not in annotation.columns:
            annotation.columns[column_index] = ColumnAnnotation(
                column=column_index, type_id=NA, score=0.0
            )
    for space in problem.pairs.values():
        if space.variable_name not in graph.variables:
            continue  # relation variables disabled (special case)
        belief = engine.belief(space.variable_name)
        index = int(np.argmax(belief))
        annotation.relations[(space.left, space.right)] = RelationAnnotation(
            left_column=space.left,
            right_column=space.right,
            label=space.labels[index],
            score=_belief_margin(belief, index),
        )
    assignment = engine.map_assignment()
    annotation.diagnostics.update(
        {
            "method": "collective",
            "engine": (
                "batched" if isinstance(engine, BatchedMaxProductBP) else "scalar"
            ),
            "iterations": iterations,
            "converged": converged,
            "log_score": graph.score(assignment),
            "n_variables": len(graph.variables),
            "n_factors": len(graph.factors),
        }
    )
    return annotation


def _belief_margin(belief: np.ndarray, chosen: int) -> float:
    if belief.shape[0] < 2:
        return float(belief[chosen])
    others = np.delete(belief, chosen)
    return float(belief[chosen] - others.max())


def annotation_marginals(
    problem: AnnotationProblem,
    model: AnnotationModel,
    config: InferenceConfig | None = None,
) -> dict[str, dict[str | None, float]]:
    """Posterior marginals for every variable via sum-product BP.

    An extension beyond the paper (which decodes with max-product only):
    returns, for each variable name (``e:r,c`` / ``t:c`` / ``b:l,r``), a
    mapping from label (including na) to its approximate posterior
    probability.  Useful for calibrated confidence thresholds, e.g. in
    catalog augmentation.
    """
    config = config if config is not None else InferenceConfig()
    graph = build_factor_graph(problem, model, with_relations=config.with_relations)
    engine = SumProductBP(graph, damping=config.damping)
    engine.run_flooding(
        max_iterations=max(config.max_iterations, 10), tolerance=config.tolerance
    )
    marginals: dict[str, dict[str | None, float]] = {}
    for name, variable in graph.variables.items():
        probabilities = engine.marginals(name)
        marginals[name] = {
            label: float(probability)
            for label, probability in zip(variable.domain, probabilities)
        }
    return marginals


def map_assignment_of(annotation: TableAnnotation) -> dict[str, str | None]:
    """Assignment dict (variable name -> label) from a decoded annotation.

    Used by the learner to compare prediction and truth through the joint
    feature map.
    """
    assignment: dict[str, str | None] = {}
    for (row, column), cell in annotation.cells.items():
        assignment[f"e:{row},{column}"] = cell.entity_id
    for column, column_annotation in annotation.columns.items():
        assignment[f"t:{column}"] = column_annotation.type_id
    for (left, right), relation in annotation.relations.items():
        assignment[f"b:{left},{right}"] = relation.label
    return assignment
