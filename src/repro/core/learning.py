"""Structured large-margin training of the model weights w1..w5.

The paper trains with the structured SVM of Tsochantaridis et al. [22] and
says only that "we follow standard machine learning procedures".  The exact
Java implementation is unavailable offline, so this module provides the same
max-margin family (DESIGN.md section 3):

* **averaged structured perceptron** (default) — per-table updates
  ``w += lr (Φ(y*) − Φ(ŷ))`` with the prediction ``ŷ`` obtained by
  *loss-augmented* collective inference (a Hamming cost on every variable),
  with the weight vector averaged over **every** example step (not just
  mistake rounds), and
* **SSVM subgradient** — the same loop with L2 shrinkage
  ``w ← (1 − lr·λ) w`` before each update (Pegasos-style margin-rescaled
  subgradient descent).

Ground-truth labels that fall outside a variable's candidate space (the
index did not retrieve the true entity) are clamped to ``na`` — the slot can
never be predicted correctly, so no gradient should flow toward it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.core.annotator import TableAnnotator
from repro.core.inference import annotate_collective, map_assignment_of
from repro.core.model import AnnotationModel
from repro.core.problem import (
    NA,
    AnnotationProblem,
    joint_feature_vector,
)
from repro.core.simple_inference import annotate_simple
from repro.tables.model import LabeledTable


@dataclass
class TrainingConfig:
    """Hyper-parameters of the structured learner."""

    epochs: int = 5
    learning_rate: float = 0.1
    method: str = "perceptron"  # or "ssvm"
    regularization: float = 1e-3  # SSVM only
    loss_cost: float = 1.0  # Hamming cost per mislabeled variable
    averaged: bool = True
    seed: int = 0
    verbose: bool = False

    def validate(self) -> None:
        if self.method not in ("perceptron", "ssvm"):
            raise ValueError(f"unknown training method: {self.method!r}")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")


def truth_assignment(
    problem: AnnotationProblem, truth
) -> dict[str, str | None]:
    """Map a :class:`~repro.tables.model.TableTruth` onto problem variables.

    Labels outside the candidate domain clamp to na; variables without any
    recorded truth default to na as well (they contribute the same feature
    mass to both sides only if the prediction also picks na — mismatches
    there correctly push the na biases).
    """
    assignment: dict[str, str | None] = {}
    for (row, column), space in problem.cells.items():
        label = truth.cell_entities.get((row, column), NA)
        assignment[space.variable_name] = label if label in space.labels else NA
    for column, space in problem.columns.items():
        label = truth.column_types.get(column, NA)
        assignment[space.variable_name] = label if label in space.labels else NA
    for (left, right), space in problem.pairs.items():
        label = truth.relations.get((left, right), NA)
        assignment[space.variable_name] = label if label in space.labels else NA
    return assignment


class StructuredTrainer:
    """Trains an :class:`AnnotationModel` on labeled tables."""

    def __init__(
        self,
        annotator: TableAnnotator,
        config: TrainingConfig | None = None,
    ) -> None:
        self.annotator = annotator
        self.config = config if config is not None else TrainingConfig()
        self.config.validate()
        self.history: list[dict[str, float]] = []

    def train(self, labeled_tables: list[LabeledTable]) -> AnnotationModel:
        """Run the configured number of epochs; returns the trained model.

        The annotator's model is *updated in place* as training progresses
        (so its caches stay valid) and the final — averaged, if configured —
        weights are written back before returning.
        """
        if not labeled_tables:
            raise ValueError("no training tables given")
        rng = random.Random(self.config.seed)
        problems = [
            (self.annotator.build_problem(labeled.table), labeled.truth)
            for labeled in labeled_tables
        ]
        weights = self.annotator.model.as_flat()
        # Averaged perceptron: the average runs over the weight vector *after
        # every example*, mistake or not.  Accumulating only on mistake rounds
        # (and dividing by the mistake count) would weight the error-heavy
        # early vectors far more than the settled late ones — exactly the
        # noise averaging exists to suppress.
        weight_sum = np.zeros_like(weights)
        n_steps = 0
        with_relations = self.annotator.config.with_relations
        for epoch in range(self.config.epochs):
            order = list(range(len(problems)))
            rng.shuffle(order)
            epoch_loss = 0.0
            for index in order:
                problem, truth = problems[index]
                gold = truth_assignment(problem, truth)
                model = AnnotationModel.from_flat(
                    weights, mode=self.annotator.model.mode
                )
                predicted = self._loss_augmented_prediction(problem, model, gold)
                hamming = sum(
                    1 for name, label in gold.items() if predicted.get(name, NA) != label
                )
                epoch_loss += hamming
                if hamming:
                    gold_features = joint_feature_vector(
                        problem, gold, with_relations=with_relations
                    )
                    predicted_features = joint_feature_vector(
                        problem, predicted, with_relations=with_relations
                    )
                    gradient = gold_features - predicted_features
                    if self.config.method == "ssvm":
                        weights *= (
                            1.0
                            - self.config.learning_rate * self.config.regularization
                        )
                    weights = weights + self.config.learning_rate * gradient
                weight_sum += weights
                n_steps += 1
            self.history.append(
                {"epoch": float(epoch), "hamming_loss": float(epoch_loss)}
            )
            if self.config.verbose:  # pragma: no cover - console aid
                print(f"[train] epoch {epoch}: hamming loss {epoch_loss:.0f}")
        if self.config.averaged and n_steps:
            final = weight_sum / n_steps
        else:
            final = weights
        trained = AnnotationModel.from_flat(final, mode=self.annotator.model.mode)
        self.annotator.model = trained
        return trained

    # ------------------------------------------------------------------
    def _loss_augmented_prediction(
        self,
        problem: AnnotationProblem,
        model: AnnotationModel,
        gold: dict[str, str | None],
    ) -> dict[str, str | None]:
        """MAP under ``w·Φ + Hamming(y, gold)`` (cost-augmented decoding)."""
        bonus: dict[str, np.ndarray] = {}
        cost = self.config.loss_cost
        spaces = list(problem.cells.values()) + list(problem.columns.values())
        if self.annotator.config.with_relations:
            spaces += list(problem.pairs.values())
        for space in spaces:
            gold_label = gold.get(space.variable_name, NA)
            penalties = np.full(len(space.labels), cost)
            try:
                gold_index = space.labels.index(gold_label)
            except ValueError:
                gold_index = 0
            penalties[gold_index] = 0.0
            bonus[space.variable_name] = penalties
        if self.annotator.config.with_relations:
            annotation = annotate_collective(
                problem,
                model,
                self.annotator.config.inference_config(),
                unary_bonus=bonus,
            )
        else:
            annotation = annotate_simple(problem, model)
        return map_assignment_of(annotation)
