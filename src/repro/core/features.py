"""The five feature families of the paper (Section 4.2).

Every family returns a fixed-length :mod:`numpy` vector; the corresponding
potential is the dot product with a trained weight vector (log-linear model).
The paper's convention "no feature is fired if label na is involved" is
honoured by the callers: na rows/columns of potential tables are identically
zero, so each feature family here is only evaluated for concrete labels.

Each non-unary-signal family also carries a trailing **bias** feature that is
1.0 for every concrete label.  With a (learned) negative weight this is what
lets ``na`` — whose score is pinned at 0 — win over weak positive evidence.
"""

from __future__ import annotations

import enum
import math

import numpy as np

from repro.catalog.catalog import Catalog
from repro.tables.generator import base_relation
from repro.text.similarity import cosine_tfidf, dice, jaccard, soft_tfidf
from repro.text.tfidf import TfidfWeights

#: Feature names, index-aligned with the vectors produced below.
F1_FEATURE_NAMES = ("cosine", "soft_tfidf", "jaccard", "dice", "exact", "bias")
F2_FEATURE_NAMES = ("cosine", "soft_tfidf", "jaccard", "dice", "exact", "bias")
F3_FEATURE_NAMES = ("distance_compatibility", "idf_specificity", "contained")
F4_FEATURE_NAMES = ("schema_match", "subject_participation", "object_participation", "bias")
F5_FEATURE_NAMES = ("tuple_exists", "functional_violation")


class TypeEntityFeatureMode(enum.Enum):
    """The three type-entity compatibility settings of the paper's Figure 8."""

    INV_SQRT_DIST = "inv_sqrt_dist"
    INV_DIST = "inv_dist"
    IDF = "idf"


# ----------------------------------------------------------------------
# f1 / f2: text-vs-lemma similarity batteries
# ----------------------------------------------------------------------
def text_lemma_features(
    text: str,
    lemmas: tuple[str, ...],
    weights: TfidfWeights | None,
) -> np.ndarray:
    """Similarity battery between a text span and a lemma set.

    Used both as f1 (cell text vs entity lemmas, Section 4.2.1) and f2
    (header text vs type lemmas, Section 4.2.2).  Each similarity takes the
    **max over lemmas**, the paper's ``max_{l in L(E)} sim(D_rc, l)``.
    """
    vector = np.zeros(len(F1_FEATURE_NAMES))
    vector[-1] = 1.0  # bias for a concrete (non-na) label
    if not text or not lemmas:
        return vector
    best_cosine = best_soft = best_jaccard = best_dice = 0.0
    exact = 0.0
    text_folded = text.strip().lower()
    for lemma in lemmas:
        best_cosine = max(best_cosine, cosine_tfidf(text, lemma, weights))
        best_soft = max(best_soft, soft_tfidf(text, lemma, weights))
        best_jaccard = max(best_jaccard, jaccard(text, lemma))
        best_dice = max(best_dice, dice(text, lemma))
        if text_folded == lemma.strip().lower():
            exact = 1.0
    vector[0] = best_cosine
    vector[1] = best_soft
    vector[2] = best_jaccard
    vector[3] = best_dice
    vector[4] = exact
    return vector


def header_absent_features() -> np.ndarray:
    """f2 when the column has no header: all-zero (the signal is silent).

    Note the bias is also zero — a missing header should neither favour nor
    penalise concrete types; φ3 carries the column-type decision alone.
    """
    return np.zeros(len(F2_FEATURE_NAMES))


# ----------------------------------------------------------------------
# f3: column type vs cell entity (Section 4.2.3)
# ----------------------------------------------------------------------
def type_entity_features(
    catalog: Catalog,
    type_id: str,
    entity_id: str,
    mode: TypeEntityFeatureMode,
) -> np.ndarray:
    """Compatibility of labelling a column ``type_id`` and a cell ``entity_id``.

    Section 4.2.3 describes two specificity signals — the IDF-style
    ``|E| / |E(T)|`` (type-level) and the reciprocal distance between entity
    and type — plus a damped ``1/sqrt(dist)`` variant.  The three Figure-8
    settings select the distance form:

    * ``INV_DIST`` — distance feature is ``1 / dist(E, T)``,
    * ``INV_SQRT_DIST`` — distance feature is ``1 / sqrt(dist(E, T))``,
    * ``IDF`` — no distance feature at all (specificity carries everything),

    and the (normalised log) IDF specificity feature is always present.  When
    ``E ∉+ T`` the *missing-link repair* applies to both: the distance is
    rebuilt from ``min_{E' ∈ E(T)} dist(E', T)`` and every signal is scaled
    by the relatedness ``min_{T' ∋ E} |E(T') ∩ E(T)| / |E(T')|`` — a hint
    that the catalog link was probably missed, not proof (paper
    Section 4.2.3, "Missing links").
    """
    distance = catalog.distance(entity_id, type_id)
    contained = math.isfinite(distance)
    if contained:
        scale = 1.0
        effective_distance = distance
    else:
        scale = catalog.relatedness(entity_id, type_id)
        effective_distance = catalog.min_instance_distance(type_id)
        if not math.isfinite(effective_distance):
            scale = 0.0
            effective_distance = 1.0
    if mode is TypeEntityFeatureMode.INV_DIST:
        distance_compat = scale / max(effective_distance, 1.0)
    elif mode is TypeEntityFeatureMode.INV_SQRT_DIST:
        distance_compat = scale / math.sqrt(max(effective_distance, 1.0))
    else:  # IDF: specificity alone
        distance_compat = 0.0
    idf_specificity = scale * _normalised_idf(catalog, type_id)
    return np.array([distance_compat, idf_specificity, 1.0 if contained else 0.0])


def _normalised_idf(catalog: Catalog, type_id: str) -> float:
    """Type IDF specificity squashed into [0, 1]."""
    maximum = math.log(max(len(catalog.entities), 2))
    return catalog.type_idf_specificity(type_id) / maximum


# ----------------------------------------------------------------------
# f4: relation vs pair of column types (Section 4.2.4)
# ----------------------------------------------------------------------
def relation_types_features(
    catalog: Catalog,
    relation_label: str,
    left_type: str,
    right_type: str,
) -> np.ndarray:
    """Compatibility of a relation label with a column-type pair.

    ``relation_label`` may carry the ``^-1`` suffix, in which case the
    subject role belongs to ``right_type``.  The schema feature is 1 when the
    (role-ordered) column types are subtypes of the relation's schema types —
    column types are typically *more specific* than schema types, so the
    subtype check generalises the paper's exact "schema exists" indicator.

    Participation features approximate the paper's "fraction of entities
    under tc that appear in relationship bcc'" with participation in the
    relation against *any* entity (cacheable per (relation, type) instead of
    per type pair); the approximation is exact whenever the partner column
    covers the relation's full active domain.
    """
    relation_id, reverse = base_relation(relation_label)
    relation = catalog.relations.get(relation_id)
    subject_type, object_type = (
        (right_type, left_type) if reverse else (left_type, right_type)
    )
    schema_match = float(
        catalog.types.is_subtype(subject_type, relation.subject_type)
        and catalog.types.is_subtype(object_type, relation.object_type)
    )
    return np.array(
        [
            schema_match,
            participation_fraction(catalog, relation_id, subject_type, "subject"),
            participation_fraction(catalog, relation_id, object_type, "object"),
            1.0,
        ]
    )


def participation_fraction(
    catalog: Catalog, relation_id: str, type_id: str, role: str
) -> float:
    """Fraction of ``E(type_id)`` participating in ``relation_id`` as ``role``."""
    members = catalog.entities_of_type(type_id)
    if not members:
        return 0.0
    if role == "subject":
        participants = catalog.relations.participating_subjects(relation_id)
    elif role == "object":
        participants = catalog.relations.participating_objects(relation_id)
    else:
        raise ValueError(f"unknown role: {role!r}")
    return len(members & participants) / len(members)


# ----------------------------------------------------------------------
# f5: relation vs entity pair (Section 4.2.5)
# ----------------------------------------------------------------------
def relation_entities_features(
    catalog: Catalog,
    relation_label: str,
    left_entity: str,
    right_entity: str,
) -> np.ndarray:
    """Row-level vote of an entity pair for/against a relation label.

    Feature 0 is 1 when the catalog contains the (role-ordered) tuple.
    Feature 1 is the paper's functionality contradiction: for a one-to-one or
    many-to-one relation, a catalog tuple pairing this subject with a
    *different* object (and symmetrically for one-to-many) — evidence
    *against* the label, so its trained weight is negative.
    """
    relation_id, reverse = base_relation(relation_label)
    subject, object_ = (
        (right_entity, left_entity) if reverse else (left_entity, right_entity)
    )
    exists = float(catalog.relations.has_tuple(relation_id, subject, object_))
    violation = 0.0
    if not exists and catalog.relations.violates_functionality(
        relation_id, subject, object_
    ):
        violation = 1.0
    return np.array([exists, violation])
