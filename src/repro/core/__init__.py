"""Core annotator: the paper's primary contribution.

Implements the joint cell-entity / column-type / column-pair-relation
annotation model of Section 4:

* :mod:`repro.core.features` — the five feature families f1..f5,
* :mod:`repro.core.candidates` — candidate label spaces (``Erc``, ``Tc``,
  ``Bcc'``) built from the lemma index,
* :mod:`repro.core.model` — the trainable weight container
  (:class:`AnnotationModel`),
* :mod:`repro.core.problem` — per-table feature caches and factor-graph
  construction,
* :mod:`repro.core.simple_inference` — the polynomial special case of the
  paper's Figure 2 (no relation variables),
* :mod:`repro.core.inference` — collective message-passing inference
  (Figure 11 schedule),
* :mod:`repro.core.baselines` — the LCA and Majority baselines
  (Section 4.5),
* :mod:`repro.core.learning` — structured perceptron / SSVM-subgradient
  training of w1..w5,
* :mod:`repro.core.annotator` — the high-level :class:`TableAnnotator`
  facade,
* :mod:`repro.core.reductions` — the Appendix-C graph-colouring reduction
  (NP-hardness witness, used by tests).
"""

from repro.core.annotation import (
    CellAnnotation,
    ColumnAnnotation,
    RelationAnnotation,
    TableAnnotation,
)
from repro.core.annotator import AnnotatorConfig, TableAnnotator
from repro.core.augmentation import (
    AugmentationReport,
    CatalogAugmenter,
    InstanceLinkProposal,
    TupleProposal,
)
from repro.core.baselines import LCAAnnotator, MajorityAnnotator
from repro.core.candidates import CandidateGenerator
from repro.core.features import TypeEntityFeatureMode
from repro.core.learning import StructuredTrainer, TrainingConfig
from repro.core.model import AnnotationModel

__all__ = [
    "AnnotationModel",
    "AnnotatorConfig",
    "AugmentationReport",
    "CandidateGenerator",
    "CatalogAugmenter",
    "InstanceLinkProposal",
    "TupleProposal",
    "CellAnnotation",
    "ColumnAnnotation",
    "LCAAnnotator",
    "MajorityAnnotator",
    "RelationAnnotation",
    "StructuredTrainer",
    "TableAnnotation",
    "TableAnnotator",
    "TrainingConfig",
    "TypeEntityFeatureMode",
]
