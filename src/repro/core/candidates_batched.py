"""The batched candidate engine: array-backed ``Erc`` / ``Tc`` / ``Bcc'``.

The scalar :class:`~repro.core.candidates.CandidateGenerator` resolves every
definition of Section 4.3 with per-cell Python loops: a dense lemma-index
probe per cell, a ``type_ancestors`` set walk per candidate and an
O(rows·k²) ``relations_between`` dict probe per column pair.  Our Figure-7
measurements show that stage at ~90% of per-table wall time once inference
is batched — so, like the BP engines of :mod:`repro.graph.compiled`, the
work moves into **build-time array layouts** plus vectorised queries:

* :class:`InternedCandidateTables` interns entity / type / relation ids to
  dense integers once per catalog and packs the derived structure the hot
  paths need — per-entity type-ancestor arrays (ragged: offsets + flat),
  per-type IDF specificity, a sorted ``(subject, object) → relations`` pair
  table and per-relation tuple-key arrays with functionality flags.  The
  tables serialize to flat arrays (:meth:`InternedCandidateTables.to_state`)
  and ship inside artifact bundles, so warm servers skip this build too.
* :class:`BatchedCandidateEngine` is a drop-in ``CandidateGenerator``:
  ``Erc`` comes from :meth:`~repro.text.index.InvertedIndex.search_batch`
  (all distinct non-numeric cells of a table scored at once in compact id
  space), ``Tc`` is two ``np.bincount`` passes over stacked ancestor arrays,
  and ``Bcc'`` is a sorted-array join over packed pair keys with per-row-pair
  memoisation.
* :class:`BatchedFeatureComputer` extends the scalar
  :class:`~repro.core.problem.FeatureComputer` with vectorised *assembly*:
  f1/f2 run the profiled similarity battery (:mod:`repro.text.profile`),
  f3 grids gather from one interned (type × entity) matrix, and f5 grids are
  ``searchsorted`` membership tests over per-relation tuple keys.

Everything is value-equivalent to the scalar path — identical candidate ids,
scores and ordering, bit-identical feature blocks, byte-identical
annotations.  The equivalence tests in ``tests/core/test_batched_candidates``
assert exactly that, and unknown ids (entities outside the interned catalog)
fall back to the scalar implementation rather than guessing.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict

import numpy as np

from repro.catalog.catalog import Catalog
from repro.core.candidates import CandidateEntity, CandidateGenerator
from repro.core.features import TypeEntityFeatureMode, type_entity_features
from repro.core.problem import FeatureComputer
from repro.tables.generator import base_relation, reversed_label
from repro.text.index import InvertedIndex
from repro.text.normalize import is_numeric_text
from repro.text.profile import (
    JaroWinklerCache,
    TokenProfile,
    text_lemma_features_profiled,
)

#: Dense-f3-matrix ceiling: above this many (type × entity) pairs the
#: interned grid would dominate memory, so f3 assembly falls back to the
#: scalar per-pair cache.
MAX_DENSE_F3_CELLS = 8_000_000

#: Bound on the per-row-pair relation memo and the cell-text profile cache.
_MEMO_ENTRIES = 65_536


class _BoundedMemo:
    """Tiny thread-safe LRU dict for text-keyed memos (no stats).

    Engines and feature computers are shared across serving / pipeline
    worker threads, so the recency shuffle and eviction run under a lock.
    """

    def __init__(self, max_entries: int = _MEMO_ENTRIES) -> None:
        self.max_entries = max_entries
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key):
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
            return value

    def put(self, key, value) -> None:
        with self._lock:
            self._entries[key] = value
            if len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)


class InternedCandidateTables:
    """Catalog structure interned into dense integer arrays (immutable).

    Built once per catalog (or loaded from a bundle) and shared by every
    pipeline; assumes the build-then-query pattern the catalog documents —
    mutating the catalog afterwards requires rebuilding the tables.
    """

    def __init__(
        self,
        entity_ids: tuple[str, ...],
        type_ids: tuple[str, ...],
        relation_ids: tuple[str, ...],
        anc_offsets: np.ndarray,
        anc_flat: np.ndarray,
        type_specificity: np.ndarray,
        pair_keys: np.ndarray,
        pair_offsets: np.ndarray,
        pair_relations: np.ndarray,
        tuple_offsets: np.ndarray,
        tuple_keys_by_relation: np.ndarray,
    ) -> None:
        self.entity_ids = entity_ids
        self.type_ids = type_ids
        self.relation_ids = relation_ids
        #: ``relation_ids[i]`` read right-to-left (the ``^-1`` labels)
        self.reversed_ids = tuple(reversed_label(r) for r in relation_ids)
        self.entity_index = {e: i for i, e in enumerate(entity_ids)}
        self.type_index = {t: i for i, t in enumerate(type_ids)}
        self.relation_index = {r: i for i, r in enumerate(relation_ids)}
        #: entity i's type ancestors: ``anc_flat[anc_offsets[i]:anc_offsets[i+1]]``
        self.anc_offsets = anc_offsets
        self.anc_flat = anc_flat
        #: ``catalog.type_idf_specificity`` per interned type
        self.type_specificity = type_specificity
        #: sorted unique directed pair keys (``subject·N + object``); the
        #: relations holding pair ``p`` are
        #: ``pair_relations[pair_offsets[p]:pair_offsets[p+1]]``
        self.pair_keys = pair_keys
        self.pair_offsets = pair_offsets
        self.pair_relations = pair_relations
        #: relation r's sorted tuple keys:
        #: ``tuple_keys_by_relation[tuple_offsets[r]:tuple_offsets[r+1]]``
        self.tuple_offsets = tuple_offsets
        self.tuple_keys_by_relation = tuple_keys_by_relation

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_catalog(cls, catalog: Catalog) -> "InternedCandidateTables":
        entity_ids = tuple(sorted(entity_id for entity_id in catalog.entities))
        type_ids = tuple(sorted(type_id for type_id in catalog.types))
        relation_ids = tuple(sorted(catalog.relations))
        entity_index = {e: i for i, e in enumerate(entity_ids)}
        type_index = {t: i for i, t in enumerate(type_ids)}

        anc_offsets = np.zeros(len(entity_ids) + 1, dtype=np.int64)
        ancestor_arrays: list[np.ndarray] = []
        for i, entity_id in enumerate(entity_ids):
            ancestors = sorted(
                type_index[t] for t in catalog.type_ancestors(entity_id)
            )
            anc_offsets[i + 1] = anc_offsets[i] + len(ancestors)
            ancestor_arrays.append(np.asarray(ancestors, dtype=np.int64))
        anc_flat = (
            np.concatenate(ancestor_arrays)
            if ancestor_arrays
            else np.zeros(0, dtype=np.int64)
        )

        type_specificity = np.array(
            [catalog.type_idf_specificity(t) for t in type_ids]
        )

        n_entities = len(entity_ids)
        keys: list[int] = []
        relations: list[int] = []
        tuple_offsets = np.zeros(len(relation_ids) + 1, dtype=np.int64)
        tuple_key_arrays: list[np.ndarray] = []
        for r, relation_id in enumerate(relation_ids):
            relation_keys = sorted(
                entity_index[subject] * n_entities + entity_index[object_]
                for subject, object_ in catalog.relations.tuples(relation_id)
            )
            tuple_offsets[r + 1] = tuple_offsets[r] + len(relation_keys)
            tuple_key_arrays.append(np.asarray(relation_keys, dtype=np.int64))
            keys.extend(relation_keys)
            relations.extend([r] * len(relation_keys))
        tuple_keys_by_relation = (
            np.concatenate(tuple_key_arrays)
            if tuple_key_arrays
            else np.zeros(0, dtype=np.int64)
        )

        key_array = np.asarray(keys, dtype=np.int64)
        relation_array = np.asarray(relations, dtype=np.int64)
        order = np.lexsort((relation_array, key_array))
        key_array = key_array[order]
        relation_array = relation_array[order]
        if len(key_array):
            starts = np.flatnonzero(
                np.concatenate(([True], key_array[1:] != key_array[:-1]))
            )
            pair_keys = key_array[starts]
            pair_offsets = np.concatenate((starts, [len(key_array)])).astype(
                np.int64
            )
        else:
            pair_keys = np.zeros(0, dtype=np.int64)
            pair_offsets = np.zeros(1, dtype=np.int64)
        return cls(
            entity_ids=entity_ids,
            type_ids=type_ids,
            relation_ids=relation_ids,
            anc_offsets=anc_offsets,
            anc_flat=anc_flat,
            type_specificity=type_specificity,
            pair_keys=pair_keys,
            pair_offsets=pair_offsets,
            pair_relations=relation_array,
            tuple_offsets=tuple_offsets,
            tuple_keys_by_relation=tuple_keys_by_relation,
        )

    # ------------------------------------------------------------------
    # serialization (artifact bundles)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """Flat-array export (bundle format; see :mod:`repro.serve.bundle`).

        A pure function of the catalog: build → export → import → export
        round-trips to identical arrays.
        """
        return {
            "entity_ids": list(self.entity_ids),
            "type_ids": list(self.type_ids),
            "relation_ids": list(self.relation_ids),
            "anc_offsets": self.anc_offsets,
            "anc_flat": self.anc_flat,
            "type_specificity": self.type_specificity,
            "pair_keys": self.pair_keys,
            "pair_offsets": self.pair_offsets,
            "pair_relations": self.pair_relations,
            "tuple_offsets": self.tuple_offsets,
            "tuple_keys_by_relation": self.tuple_keys_by_relation,
        }

    @classmethod
    def from_state(cls, state: dict) -> "InternedCandidateTables":
        """Rebuild from :meth:`to_state` output (arrays used as-is)."""
        return cls(
            entity_ids=tuple(state["entity_ids"]),
            type_ids=tuple(state["type_ids"]),
            relation_ids=tuple(state["relation_ids"]),
            anc_offsets=np.asarray(state["anc_offsets"], dtype=np.int64),
            anc_flat=np.asarray(state["anc_flat"], dtype=np.int64),
            type_specificity=np.asarray(state["type_specificity"]),
            pair_keys=np.asarray(state["pair_keys"], dtype=np.int64),
            pair_offsets=np.asarray(state["pair_offsets"], dtype=np.int64),
            pair_relations=np.asarray(state["pair_relations"], dtype=np.int64),
            tuple_offsets=np.asarray(state["tuple_offsets"], dtype=np.int64),
            tuple_keys_by_relation=np.asarray(
                state["tuple_keys_by_relation"], dtype=np.int64
            ),
        )


def _gather_ragged(
    offsets: np.ndarray, flat: np.ndarray, positions: np.ndarray
) -> np.ndarray:
    """Concatenate ``flat[offsets[p]:offsets[p+1]]`` for every ``p`` given."""
    starts = offsets[positions]
    counts = (offsets[positions + 1] - starts).astype(np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=flat.dtype)
    index = np.repeat(starts, counts) + (
        np.arange(total, dtype=np.int64)
        - np.repeat(np.cumsum(counts) - counts, counts)
    )
    return flat[index]


class BatchedCandidateEngine:
    """Array-backed drop-in for :class:`CandidateGenerator` (see module docs).

    Wraps a scalar generator (sharing its frozen lemma index and TF-IDF
    table) and answers the same three candidate queries from the interned
    tables.  ``state`` restores prebuilt tables (bundle load path).
    """

    def __init__(
        self,
        generator: CandidateGenerator,
        tables: InternedCandidateTables | None = None,
    ) -> None:
        self._generator = generator
        self.catalog = generator.catalog
        self.top_k_entities = generator.top_k_entities
        self.max_type_candidates = generator.max_type_candidates
        self.lemma_tfidf = generator.lemma_tfidf
        self.tables = (
            tables
            if tables is not None
            else InternedCandidateTables.from_catalog(generator.catalog)
        )
        self._pair_memo = _BoundedMemo()

    @property
    def lemma_index(self) -> InvertedIndex:
        return self._generator.lemma_index

    @property
    def scalar_generator(self) -> CandidateGenerator:
        """The wrapped per-cell reference generator."""
        return self._generator

    # ------------------------------------------------------------------
    # Erc
    # ------------------------------------------------------------------
    def cell_candidates(self, cell_text: str) -> list[CandidateEntity]:
        """Single-cell probe (delegates to the scalar reference path)."""
        return self._generator.cell_candidates(cell_text)

    def cell_candidates_batch(
        self, cell_texts: list[str]
    ) -> list[list[CandidateEntity]]:
        """``Erc`` for every cell of a table (or pipeline batch) at once.

        Numeric/blank cells yield ``[]`` without touching the index; the
        distinct remaining texts are scored through
        :meth:`InvertedIndex.search_batch` in one pass.  Duplicate cells
        share one (immutable) candidate list.
        """
        results: list[list[CandidateEntity] | None] = [None] * len(cell_texts)
        distinct: dict[str, list[int]] = {}
        for position, cell_text in enumerate(cell_texts):
            text = cell_text.strip()
            if not text or is_numeric_text(text):
                results[position] = []
            else:
                distinct.setdefault(text, []).append(position)
        if distinct:
            queries = list(distinct)
            for query, hits in zip(
                queries,
                self.lemma_index.search_batch(queries, top_k=self.top_k_entities),
            ):
                candidates = [
                    CandidateEntity(entity_id=hit.key, retrieval_score=hit.score)
                    for hit in hits
                ]
                for position in distinct[query]:
                    results[position] = candidates
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Tc
    # ------------------------------------------------------------------
    def intern_entity_ids(self, entity_ids) -> np.ndarray | None:
        """Interned ids of an entity-id sequence; None when any is unknown."""
        index = self.tables.entity_index
        ints = np.zeros(len(entity_ids), dtype=np.int64)
        for i, entity_id in enumerate(entity_ids):
            interned = index.get(entity_id)
            if interned is None:
                return None
            ints[i] = interned
        return ints

    def _entity_ints(
        self, candidates: list[CandidateEntity]
    ) -> np.ndarray | None:
        """Interned ids of a candidate list; None when any id is unknown."""
        return self.intern_entity_ids(
            [candidate.entity_id for candidate in candidates]
        )

    def column_type_candidates(
        self, column_candidates: list[list[CandidateEntity]]
    ) -> list[str]:
        """``Tc`` via two bincounts over stacked ancestor arrays.

        Ranking matches the scalar generator exactly: (#cells supporting the
        type, #candidate entities under it, IDF specificity, type id).
        """
        tables = self.tables
        per_cell: list[np.ndarray] = []
        for candidates in column_candidates:
            if not candidates:
                continue
            ints = self._entity_ints(candidates)
            if ints is None:
                # unknown entity id: the interned tables cannot answer —
                # defer to the scalar reference for the whole column
                return self._generator.column_type_candidates(column_candidates)
            per_cell.append(
                _gather_ragged(tables.anc_offsets, tables.anc_flat, ints)
            )
        if not per_cell:
            return []
        n_types = len(tables.type_ids)
        entity_support = np.bincount(
            np.concatenate(per_cell), minlength=n_types
        )
        cell_support = np.bincount(
            np.concatenate([np.unique(ancestors) for ancestors in per_cell]),
            minlength=n_types,
        )
        supported = np.flatnonzero(cell_support)
        if not len(supported):
            return []
        # lexsort's last key is primary: cell support desc, entity support
        # desc, specificity desc, interned type id asc (== type id asc, the
        # ids are interned in sorted order)
        order = np.lexsort(
            (
                supported,
                -tables.type_specificity[supported],
                -entity_support[supported],
                -cell_support[supported],
            )
        )
        ranked = supported[order[: self.max_type_candidates]]
        return [tables.type_ids[i] for i in ranked.tolist()]

    # ------------------------------------------------------------------
    # Bcc'
    # ------------------------------------------------------------------
    def _pair_relation_ints(
        self, left_ints: np.ndarray, right_ints: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """(forward, reversed) relation ints joining one row's candidates."""
        tables = self.tables
        n_entities = len(tables.entity_ids)
        forward_keys = (
            left_ints[:, None] * n_entities + right_ints[None, :]
        ).reshape(-1)
        backward_keys = (
            right_ints[:, None] * n_entities + left_ints[None, :]
        ).reshape(-1)
        found: list[np.ndarray] = []
        for keys in (forward_keys, backward_keys):
            positions = np.searchsorted(tables.pair_keys, keys)
            positions = np.minimum(positions, len(tables.pair_keys) - 1)
            matched = (
                positions[tables.pair_keys[positions] == keys]
                if len(tables.pair_keys)
                else np.zeros(0, dtype=np.int64)
            )
            found.append(
                np.unique(
                    _gather_ragged(
                        tables.pair_offsets, tables.pair_relations, matched
                    )
                )
            )
        return found[0], found[1]

    def relation_candidates(
        self,
        left_candidates: list[list[CandidateEntity]],
        right_candidates: list[list[CandidateEntity]],
    ) -> list[str]:
        """``Bcc'`` as sorted-array pair joins with per-row-pair memoisation."""
        tables = self.tables
        forward: set[int] = set()
        backward: set[int] = set()
        for row_left, row_right in zip(left_candidates, right_candidates):
            if not row_left or not row_right:
                continue
            memo_key = (
                tuple(candidate.entity_id for candidate in row_left),
                tuple(candidate.entity_id for candidate in row_right),
            )
            cached = self._pair_memo.get(memo_key)
            if cached is None:
                left_ints = self._entity_ints(row_left)
                right_ints = self._entity_ints(row_right)
                if left_ints is None or right_ints is None:
                    return self._generator.relation_candidates(
                        left_candidates, right_candidates
                    )
                cached = self._pair_relation_ints(left_ints, right_ints)
                self._pair_memo.put(memo_key, cached)
            forward.update(cached[0].tolist())
            backward.update(cached[1].tolist())
        labels = {tables.relation_ids[r] for r in forward}
        labels.update(tables.reversed_ids[r] for r in backward)
        return sorted(labels)


class BatchedFeatureComputer(FeatureComputer):
    """:class:`FeatureComputer` with vectorised block assembly.

    The element features (f1..f5 per concrete label) are unchanged — the
    batched paths produce bit-identical arrays, they just stop paying a
    Python call per element.  Blocks still flow through ``block_cache`` when
    the pipeline attaches one.
    """

    def __init__(
        self,
        catalog: Catalog,
        mode: TypeEntityFeatureMode,
        generator,
        engine: BatchedCandidateEngine,
    ) -> None:
        super().__init__(catalog, mode, generator)
        self.engine = engine
        tables = engine.tables
        self._jw = JaroWinklerCache()
        self._text_profiles = _BoundedMemo()
        self._entity_profiles: dict[str, tuple[TokenProfile, ...]] = {}
        self._type_profiles: dict[str, tuple[TokenProfile, ...]] = {}
        # dense interned f3 grid (lazy; gated on catalog size)
        n_cells = len(tables.type_ids) * len(tables.entity_ids)
        self._f3_dense_enabled = 0 < n_cells <= MAX_DENSE_F3_CELLS
        self._f3_values: np.ndarray | None = None
        self._f3_known: np.ndarray | None = None
        self._f3_init_lock = threading.Lock()
        self._participant_cache: dict[tuple[int, str], np.ndarray] = {}
        # interned f3 element inputs, built on first dense f3 fill:
        # normalised per-type IDF, the type-co-occurrence count matrix
        # |E(T1) ∩ E(T2)| and per-entity direct-type int arrays
        self._norm_idf: np.ndarray | None = None
        self._type_overlap: np.ndarray | None = None
        self._type_member_counts: np.ndarray | None = None
        self._direct_type_ints: list[np.ndarray] | None = None

    # -- profiles ---------------------------------------------------------
    def _text_profile(self, text: str) -> TokenProfile:
        profile = self._text_profiles.get(text)
        if profile is None:
            profile = TokenProfile.from_text(text, self.generator.lemma_tfidf)
            self._text_profiles.put(text, profile)
        return profile

    def _lemma_profiles(
        self,
        cache: dict[str, tuple[TokenProfile, ...]],
        lemmas: tuple[str, ...],
        key: str,
    ) -> tuple[TokenProfile, ...]:
        profiles = cache.get(key)
        if profiles is None:
            weights = self.generator.lemma_tfidf
            profiles = tuple(
                TokenProfile.from_text(lemma, weights) for lemma in lemmas
            )
            cache[key] = profiles
        return profiles

    # -- f1 / f2 ----------------------------------------------------------
    def f1_block(
        self, cell_text: str, entity_ids: tuple[str, ...]
    ) -> np.ndarray:
        def build() -> np.ndarray:
            profile = self._text_profile(cell_text)
            rows = [
                text_lemma_features_profiled(
                    profile,
                    self._lemma_profiles(
                        self._entity_profiles,
                        self.catalog.entities.lemmas(entity_id),
                        entity_id,
                    ),
                    self._jw,
                )
                for entity_id in entity_ids
            ]
            return np.stack(rows)

        return self._block(("f1", cell_text, entity_ids), build)

    def f2_block(
        self, header_text: str | None, type_ids: tuple[str, ...]
    ) -> np.ndarray:
        def build() -> np.ndarray:
            if header_text is None or not header_text.strip():
                return np.stack(
                    [self.f2(header_text, type_id) for type_id in type_ids]
                )
            profile = self._text_profile(header_text)
            rows = [
                text_lemma_features_profiled(
                    profile,
                    self._lemma_profiles(
                        self._type_profiles,
                        self.catalog.types.lemmas(type_id),
                        type_id,
                    ),
                    self._jw,
                )
                for type_id in type_ids
            ]
            return np.stack(rows)

        return self._block(("f2", header_text, type_ids), build)

    # -- f3 ---------------------------------------------------------------
    def _f3_grid(
        self, type_ids: tuple[str, ...], entity_ids: tuple[str, ...]
    ) -> np.ndarray:
        tables = self.engine.tables
        type_ints = [tables.type_index.get(t) for t in type_ids]
        entity_ints = [tables.entity_index.get(e) for e in entity_ids]
        if (
            not self._f3_dense_enabled
            or any(i is None for i in type_ints)
            or any(i is None for i in entity_ints)
        ):
            # scalar assembly (still served by the per-pair element cache)
            return np.stack(
                [
                    np.stack([self.f3(t, e) for e in entity_ids])
                    for t in type_ids
                ]
            )
        # reprolint: ignore[lock-unguarded-attr]: double-checked init gate —
        # a stale None re-checks under _f3_init_lock below
        if self._f3_values is None:
            # double-checked init: _f3_values is the readiness gate and is
            # published last, so lock-free readers never see partial state;
            # the grid itself fills idempotently (deterministic values,
            # value written before its known flag) outside the lock
            with self._f3_init_lock:
                if self._f3_values is None:
                    shape = (len(tables.type_ids), len(tables.entity_ids))
                    self._ensure_f3_inputs()
                    self._f3_known = np.zeros(shape, dtype=bool)
                    self._f3_values = np.zeros(shape + (3,), dtype=np.float64)
        # reprolint: ignore[lock-unguarded-attr]: _f3_known exists whenever
        # _f3_values does (both published under _f3_init_lock above)
        assert self._f3_known is not None
        type_index = np.asarray(type_ints, dtype=np.int64)
        entity_index = np.asarray(entity_ints, dtype=np.int64)
        # reprolint: ignore[lock-unguarded-attr]: a racing reader seeing a
        # stale False just recomputes the same deterministic value below
        known = self._f3_known[np.ix_(type_index, entity_index)]
        if not known.all():
            for t_pos, e_pos in zip(*np.nonzero(~known)):
                t_int = int(type_index[t_pos])
                e_int = int(entity_index[e_pos])
                # reprolint: ignore[lock-unguarded-attr]: idempotent fill —
                # every racer writes the identical deterministic value
                self._f3_values[t_int, e_int] = self._f3_value(t_int, e_int)
                # reprolint: ignore[lock-unguarded-attr]: flag set strictly
                # after its value; worst case is one redundant recompute
                self._f3_known[t_int, e_int] = True
        # reprolint: ignore[lock-unguarded-attr]: every cell read here was
        # made known (value-before-flag) by this or an earlier call
        return self._f3_values[np.ix_(type_index, entity_index)]

    def _ensure_f3_inputs(self) -> None:
        """Intern everything :func:`type_entity_features` derives per call.

        The co-occurrence matrix turns ``relatedness``'s per-call set
        intersections into one integer matmul over the entity→ancestor
        membership matrix: ``overlap[T', T] = |E(T') ∩ E(T)|`` exactly,
        because ``E ∈+ T ⇔ T ∈ T(E)``.
        """
        tables = self.engine.tables
        catalog = self.catalog
        # same expression as features._normalised_idf, hoisted per type
        maximum = math.log(max(len(catalog.entities), 2))
        self._norm_idf = np.asarray(tables.type_specificity) / maximum
        n_entities = len(tables.entity_ids)
        n_types = len(tables.type_ids)
        membership = np.zeros((n_entities, n_types), dtype=np.float64)
        counts = np.diff(tables.anc_offsets)
        membership[
            np.repeat(np.arange(n_entities), counts), tables.anc_flat
        ] = 1.0
        self._type_overlap = membership.T @ membership
        self._type_member_counts = np.diagonal(self._type_overlap).copy()
        type_index = tables.type_index
        self._direct_type_ints = [
            np.asarray(
                sorted(
                    type_index[t]
                    for t in catalog.entities.get(entity_id).direct_types
                ),
                dtype=np.int64,
            )
            for entity_id in tables.entity_ids
        ]

    def _f3_value(self, t_int: int, e_int: int) -> tuple[float, float, float]:
        """One f3 element from the interned inputs.

        Term-for-term the arithmetic of :func:`type_entity_features`
        (equivalence-tested bit-identical); only the lookups changed.
        """
        tables = self.engine.tables
        catalog = self.catalog
        assert (
            self._norm_idf is not None
            and self._type_overlap is not None
            and self._type_member_counts is not None
            and self._direct_type_ints is not None
        )
        type_id = tables.type_ids[t_int]
        distance = catalog.distance(tables.entity_ids[e_int], type_id)
        contained = math.isfinite(distance)
        if contained:
            scale = 1.0
            effective_distance = distance
        else:
            # relatedness: min over direct types of |E(T') ∩ E(T)| / |E(T')|
            best = math.inf
            for direct in self._direct_type_ints[e_int].tolist():
                members = self._type_member_counts[direct]
                overlap = (
                    self._type_overlap[direct, t_int] / members
                    if members
                    else 0.0
                )
                best = min(best, overlap)
            scale = 0.0 if best is math.inf else float(best)
            effective_distance = catalog.min_instance_distance(type_id)
            if not math.isfinite(effective_distance):
                scale = 0.0
                effective_distance = 1.0
        if self.mode is TypeEntityFeatureMode.INV_DIST:
            distance_compat = scale / max(effective_distance, 1.0)
        elif self.mode is TypeEntityFeatureMode.INV_SQRT_DIST:
            distance_compat = scale / math.sqrt(max(effective_distance, 1.0))
        else:  # IDF: specificity alone
            distance_compat = 0.0
        idf_specificity = scale * self._norm_idf[t_int]
        return distance_compat, idf_specificity, 1.0 if contained else 0.0

    def f3_block(
        self, type_ids: tuple[str, ...], entity_ids: tuple[str, ...]
    ) -> np.ndarray:
        return self._block(
            ("f3", type_ids, entity_ids),
            lambda: self._f3_grid(type_ids, entity_ids),
        )

    # -- f5 ---------------------------------------------------------------
    def _f5_grid(
        self,
        labels: tuple[str, ...],
        left_ids: tuple[str, ...],
        right_ids: tuple[str, ...],
    ) -> np.ndarray:
        tables = self.engine.tables
        left_ints = self.engine.intern_entity_ids(left_ids)
        right_ints = self.engine.intern_entity_ids(right_ids)
        block = np.zeros(
            (len(labels), len(left_ids), len(right_ids), 2), dtype=np.float64
        )
        if left_ints is None or right_ints is None:
            # unknown entity: scalar per-element fill
            for b_index, label in enumerate(labels):
                for e_index, left_id in enumerate(left_ids):
                    for o_index, right_id in enumerate(right_ids):
                        block[b_index, e_index, o_index] = self.f5(
                            label, left_id, right_id
                        )
            return block
        n_entities = len(tables.entity_ids)
        for b_index, label in enumerate(labels):
            relation_id, reverse = base_relation(label)
            relation_int = tables.relation_index.get(relation_id)
            if relation_int is None:
                for e_index, left_id in enumerate(left_ids):
                    for o_index, right_id in enumerate(right_ids):
                        block[b_index, e_index, o_index] = self.f5(
                            label, left_id, right_id
                        )
                continue
            start = tables.tuple_offsets[relation_int]
            stop = tables.tuple_offsets[relation_int + 1]
            relation_keys = tables.tuple_keys_by_relation[start:stop]
            # grid layout is [left, right]; the subject role swaps side for
            # reversed labels, exactly as in the scalar f5
            if reverse:
                keys = left_ints[:, None] + right_ints[None, :] * n_entities
            else:
                keys = left_ints[:, None] * n_entities + right_ints[None, :]
            if len(relation_keys):
                positions = np.searchsorted(relation_keys, keys)
                positions = np.minimum(positions, len(relation_keys) - 1)
                exists = relation_keys[positions] == keys
            else:
                exists = np.zeros(keys.shape, dtype=bool)
            relation = self.catalog.relations.get(relation_id)
            violation = np.zeros(keys.shape, dtype=bool)
            if relation.cardinality.subject_functional:
                # a subject with any catalog tuple contradicts a non-tuple
                # pairing (the &= ~exists below restricts to those)
                active = self._relation_participants(relation_int, "subject")
                if reverse:
                    violation |= active[right_ints][None, :]
                else:
                    violation |= active[left_ints][:, None]
            if relation.cardinality.object_functional:
                active = self._relation_participants(relation_int, "object")
                if reverse:
                    violation |= active[left_ints][:, None]
                else:
                    violation |= active[right_ints][None, :]
            violation &= ~exists
            block[b_index, :, :, 0] = exists
            block[b_index, :, :, 1] = violation
        return block

    def _relation_participants(self, relation_int: int, role: str) -> np.ndarray:
        """Bool-per-entity: participates in the relation as ``role``."""
        cache = self._participant_cache
        key = (relation_int, role)
        active = cache.get(key)
        if active is None:
            tables = self.engine.tables
            n_entities = len(tables.entity_ids)
            start = tables.tuple_offsets[relation_int]
            stop = tables.tuple_offsets[relation_int + 1]
            keys = tables.tuple_keys_by_relation[start:stop]
            members = keys // n_entities if role == "subject" else keys % n_entities
            active = np.zeros(n_entities, dtype=bool)
            active[members] = True
            cache[key] = active
        return active

    def f5_block(
        self,
        labels: tuple[str, ...],
        left_ids: tuple[str, ...],
        right_ids: tuple[str, ...],
    ) -> np.ndarray:
        return self._block(
            ("f5", labels, left_ids, right_ids),
            lambda: self._f5_grid(labels, left_ids, right_ids),
        )
