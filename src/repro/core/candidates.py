"""Candidate label spaces: ``Erc``, ``Tc`` and ``Bcc'`` (Section 4.3).

The paper determines the space of values each variable ranges over as:

* ``Erc`` — entities retrieved from a text index "based on overlap between
  cell and lemma tokens",
* ``Tc`` — the union of type ancestors of all candidate entities in the
  column (``∪_{E ∈ Erc} T(E)``),
* ``Bcc'`` — relations with a catalog tuple joining candidate entities of
  the two columns (in either direction here: reversed labels carry ``^-1``),

plus ``na`` everywhere.  The lemma index is the expensive part of annotation
(the paper's Figure 7 attributes ~80% of time to lemma probing); the
:class:`CandidateGenerator` is therefore built once per catalog and reused.

Two candidate engines run these definitions (mirroring the BP engine split in
:mod:`repro.core.inference`): this module's per-cell **scalar** reference,
and the **batched** engine of :mod:`repro.core.candidates_batched` (the
default), which precomputes interned integer id tables at build and replaces
the per-cell Python loops with array programs.  ``CANDIDATE_ENGINES`` is the
registry both the annotator config and the API layer validate against.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.catalog.catalog import Catalog
from repro.tables.generator import reversed_label
from repro.text.index import InvertedIndex
from repro.text.normalize import is_numeric_text
from repro.text.tfidf import TfidfWeights

#: Candidate-engine registry: "batched" (vectorised, default) or "scalar"
#: (this module's per-cell reference).
CANDIDATE_ENGINES = ("batched", "scalar")


@dataclass(frozen=True)
class CandidateEntity:
    """One retrieved candidate: entity id and raw index score."""

    entity_id: str
    retrieval_score: float


class CandidateGenerator:
    """Builds candidate spaces against one catalog.

    Args:
        catalog: The (annotator-view) catalog.
        top_k_entities: Cap on ``|Erc|``; the paper observes 7-8 candidate
            entities per cell, the default of 8 mirrors that.
        max_type_candidates: Cap on ``|Tc|``; candidate types are ranked by
            how many of the column's candidate entities they cover (then by
            specificity), so the cap trims only rarely-supported types.
        lemma_index: A prebuilt frozen lemma index (artifact-bundle load
            path); built from the catalog's lemmas when ``None``.
        lemma_tfidf: The prebuilt TF-IDF table matching ``lemma_index``;
            must be given exactly when ``lemma_index`` is.
    """

    def __init__(
        self,
        catalog: Catalog,
        top_k_entities: int = 8,
        max_type_candidates: int = 64,
        lemma_index: InvertedIndex | None = None,
        lemma_tfidf: TfidfWeights | None = None,
    ) -> None:
        if top_k_entities < 1:
            raise ValueError("top_k_entities must be >= 1")
        if max_type_candidates < 1:
            raise ValueError("max_type_candidates must be >= 1")
        if (lemma_index is None) != (lemma_tfidf is None):
            raise ValueError("lemma_index and lemma_tfidf must be given together")
        self.catalog = catalog
        self.top_k_entities = top_k_entities
        self.max_type_candidates = max_type_candidates
        if lemma_index is not None and lemma_tfidf is not None:
            self._index = lemma_index
            self.lemma_tfidf = lemma_tfidf
        else:
            self._index = InvertedIndex()
            lemma_documents: list[str] = []
            for entity in catalog.entities.all_entities():
                for lemma in entity.lemmas:
                    self._index.add(entity.entity_id, lemma)
                    lemma_documents.append(lemma)
            self._index.freeze()
            self.lemma_tfidf = TfidfWeights.from_documents(lemma_documents)

    @property
    def lemma_index(self) -> InvertedIndex:
        """The frozen lemma index (exported into artifact bundles)."""
        return self._index

    # ------------------------------------------------------------------
    # Erc
    # ------------------------------------------------------------------
    def cell_candidates(self, cell_text: str) -> list[CandidateEntity]:
        """Candidate entities for one cell; empty for numeric/blank cells."""
        text = cell_text.strip()
        if not text or is_numeric_text(text):
            return []
        hits = self._index.search(text, top_k=self.top_k_entities)
        return [
            CandidateEntity(entity_id=hit.key, retrieval_score=hit.score)
            for hit in hits
        ]

    # ------------------------------------------------------------------
    # Tc
    # ------------------------------------------------------------------
    def column_type_candidates(
        self, column_candidates: list[list[CandidateEntity]]
    ) -> list[str]:
        """Candidate types for a column given its cells' entity candidates.

        Returns ``∪_{r} ∪_{E ∈ Erc} T(E)`` ranked by (#cells with a candidate
        under the type, #candidate entities under the type, IDF specificity),
        truncated to ``max_type_candidates``.
        """
        cell_support: Counter[str] = Counter()
        entity_support: Counter[str] = Counter()
        for candidates in column_candidates:
            seen_in_cell: set[str] = set()
            for candidate in candidates:
                for type_id in self.catalog.type_ancestors(candidate.entity_id):
                    entity_support[type_id] += 1
                    seen_in_cell.add(type_id)
            for type_id in seen_in_cell:
                cell_support[type_id] += 1
        ranked = sorted(
            cell_support,
            key=lambda type_id: (
                -cell_support[type_id],
                -entity_support[type_id],
                -self.catalog.type_idf_specificity(type_id),
                type_id,
            ),
        )
        return ranked[: self.max_type_candidates]

    # ------------------------------------------------------------------
    # Bcc'
    # ------------------------------------------------------------------
    def relation_candidates(
        self,
        left_candidates: list[list[CandidateEntity]],
        right_candidates: list[list[CandidateEntity]],
    ) -> list[str]:
        """Candidate relation labels for an ordered column pair.

        A relation ``B`` is a candidate when some row has candidate entities
        ``E`` (left) and ``E'`` (right) with ``B(E, E')`` — emitted as the
        plain label — or ``B(E', E)`` — emitted with the ``^-1`` suffix.
        """
        labels: set[str] = set()
        for row_left, row_right in zip(left_candidates, right_candidates):
            for left in row_left:
                for right in row_right:
                    for relation_id in self.catalog.relations.relations_between(
                        left.entity_id, right.entity_id
                    ):
                        labels.add(relation_id)
                    for relation_id in self.catalog.relations.relations_between(
                        right.entity_id, left.entity_id
                    ):
                        labels.add(reversed_label(relation_id))
        return sorted(labels)
