"""Unique-column (primary key) constrained entity assignment.

The paper notes (Section 4.4.1) that "primary key or unique constraints on a
column can be handled using a min cost flow formulation".  With one unit of
flow per row and unit capacity per entity this is exactly the rectangular
assignment problem, which we solve with
:func:`scipy.optimize.linear_sum_assignment` (the Hungarian algorithm — the
min-cost-flow special case the construction reduces to).

Given a fixed column type ``T`` (from Figure-2 inference), each row may take
one of its candidate entities (score ``φ1 + φ3(T, ·)``) or ``na`` (score 0),
and no concrete entity may be used by two rows.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.core.model import AnnotationModel
from repro.core.problem import NA, AnnotationProblem, FeatureComputer

#: Effective -inf for forbidden (row, entity) pairs; finite so the Hungarian
#: solver stays numerically happy, large enough never to be chosen over na.
_FORBIDDEN = -1e9


def assign_unique_entities(
    problem: AnnotationProblem,
    model: AnnotationModel,
    features: FeatureComputer,
    column: int,
    type_id: str | None,
) -> dict[int, str | None]:
    """Best row→entity assignment with each entity used at most once.

    Args:
        problem: The table's annotation problem (candidate spaces + f1).
        model: Weights used to score ``φ1`` and ``φ3``.
        features: Memoised feature computer (φ3 may need types outside the
            column's cached candidates).
        column: The column index carrying the uniqueness constraint.
        type_id: The column's (already chosen) type, or ``None`` for na.

    Returns:
        Mapping from every row that has a cell variable to its assigned
        entity id or ``None`` (na).  Maximises the summed log-score subject
        to the all-different constraint over concrete entities.
    """
    rows = [
        row for row in range(problem.table.n_rows) if (row, column) in problem.cells
    ]
    if not rows:
        return {}
    entities = sorted(
        {
            candidate.entity_id
            for row in rows
            for candidate in problem.cells[(row, column)].candidates
        }
    )
    entity_index = {entity: position for position, entity in enumerate(entities)}

    # Score matrix: rows x (entities ... | one na slot per row).
    n_rows, n_entities = len(rows), len(entities)
    scores = np.full((n_rows, n_entities + n_rows), _FORBIDDEN)
    for row_position, row in enumerate(rows):
        cell = problem.cells[(row, column)]
        unary = cell.f1 @ model.w1
        for candidate_position, candidate in enumerate(cell.candidates):
            score = float(unary[candidate_position])
            if type_id is not NA:
                score += float(features.f3(type_id, candidate.entity_id) @ model.w3)
            scores[row_position, entity_index[candidate.entity_id]] = score
        scores[row_position, n_entities + row_position] = 0.0  # this row's na

    row_indices, column_indices = linear_sum_assignment(scores, maximize=True)
    assignment: dict[int, str | None] = {}
    for row_position, chosen in zip(row_indices, column_indices):
        row = rows[row_position]
        if chosen < n_entities and scores[row_position, chosen] > _FORBIDDEN / 2:
            assignment[row] = entities[chosen]
        else:
            assignment[row] = NA
    return assignment
