"""Catalog augmentation from annotated tables.

The paper's conclusion: "Socially maintained catalogs will always be
incomplete.  Our work paves the way to augment catalogs with dynamic
relational information."  This module implements that step: given a corpus of
tables and their annotations, it proposes

* **relation tuples** ``B(E1, E2)`` — from rows of column pairs annotated
  with relation ``B`` whose two cells both carry entity annotations, and
* **instance links** ``E ∈ T`` — from cells annotated ``E`` in columns
  annotated ``T`` where the catalog does not (transitively) know ``E ∈+ T``,

each with a support count (how many independent table rows assert it) and an
aggregate confidence from the annotation scores.  Facts already known to the
catalog are filtered out, so the output is exactly the *new* knowledge the
corpus contributes ("the seed tuples we start with in our catalog are only a
small fraction of all the tuples we find").

Because the synthetic world keeps the uncorrupted catalog around, tests and
the augmentation bench can measure precision/recall of the proposals against
the links and tuples that were deliberately dropped from the annotator view.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.catalog import Catalog
from repro.core.annotation import TableAnnotation
from repro.tables.generator import base_relation


@dataclass(frozen=True)
class TupleProposal:
    """A proposed new relation tuple with its evidence."""

    relation_id: str
    subject: str
    object_: str
    support: int
    confidence: float
    source_tables: tuple[str, ...]


@dataclass(frozen=True)
class InstanceLinkProposal:
    """A proposed new ``E ∈ T`` link with its evidence."""

    entity_id: str
    type_id: str
    support: int
    confidence: float
    source_tables: tuple[str, ...]


@dataclass
class AugmentationReport:
    """All proposals mined from one corpus."""

    tuples: list[TupleProposal] = field(default_factory=list)
    instance_links: list[InstanceLinkProposal] = field(default_factory=list)

    def apply_to(self, catalog: Catalog, min_support: int = 1) -> dict[str, int]:
        """Write sufficiently-supported proposals into ``catalog``.

        Returns counts of applied facts.  Only proposals whose relation /
        type / entities all exist in the target catalog are applied.
        """
        applied_tuples = applied_links = 0
        for proposal in self.tuples:
            if proposal.support < min_support:
                continue
            if proposal.relation_id not in catalog.relations:
                continue
            if (
                proposal.subject not in catalog.entities
                or proposal.object_ not in catalog.entities
            ):
                continue
            catalog.add_tuple(proposal.relation_id, proposal.subject, proposal.object_)
            applied_tuples += 1
        for proposal in self.instance_links:
            if proposal.support < min_support:
                continue
            if (
                proposal.type_id not in catalog.types
                or proposal.entity_id not in catalog.entities
            ):
                continue
            catalog.entities.add_direct_type(proposal.entity_id, proposal.type_id)
            applied_links += 1
        catalog.invalidate_caches()
        return {"tuples": applied_tuples, "instance_links": applied_links}


class CatalogAugmenter:
    """Mines new facts from (table, annotation) pairs against one catalog."""

    def __init__(self, catalog: Catalog, min_confidence: float = 0.0) -> None:
        self.catalog = catalog
        self.min_confidence = min_confidence
        self._tuple_support: dict[tuple[str, str, str], list[tuple[str, float]]] = {}
        self._link_support: dict[tuple[str, str], list[tuple[str, float]]] = {}

    # ------------------------------------------------------------------
    def add_annotated_table(self, annotation: TableAnnotation) -> None:
        """Accumulate evidence from one annotated table."""
        self._mine_tuples(annotation)
        self._mine_instance_links(annotation)

    def _mine_tuples(self, annotation: TableAnnotation) -> None:
        for (left, right), relation in annotation.relations.items():
            if relation.label is None:
                continue
            relation_id, reverse = base_relation(relation.label)
            if relation_id not in self.catalog.relations:
                continue
            subject_column, object_column = (
                (right, left) if reverse else (left, right)
            )
            n_rows = max(
                (row for row, _c in annotation.cells), default=-1
            ) + 1
            for row in range(n_rows):
                subject_cell = annotation.cells.get((row, subject_column))
                object_cell = annotation.cells.get((row, object_column))
                if subject_cell is None or object_cell is None:
                    continue
                subject = subject_cell.entity_id
                object_ = object_cell.entity_id
                if subject is None or object_ is None:
                    continue
                if self.catalog.relations.has_tuple(relation_id, subject, object_):
                    continue  # already known: not new knowledge
                # A proposed fact is only as trustworthy as its *least*
                # certain ingredient: the two cell disambiguations and the
                # pair's relation label (scores are belief margins).
                confidence = max(
                    min(relation.score, subject_cell.score, object_cell.score),
                    0.0,
                )
                self._tuple_support.setdefault(
                    (relation_id, subject, object_), []
                ).append((annotation.table_id, confidence))

    def _mine_instance_links(self, annotation: TableAnnotation) -> None:
        for (_row, column), cell in annotation.cells.items():
            if cell.entity_id is None:
                continue
            column_annotation = annotation.columns.get(column)
            if column_annotation is None or column_annotation.type_id is None:
                continue
            type_id = column_annotation.type_id
            if cell.entity_id not in self.catalog.entities:
                continue
            if self.catalog.is_instance(cell.entity_id, type_id):
                continue  # already reachable: not a missing link
            confidence = max(min(cell.score, column_annotation.score), 0.0)
            self._link_support.setdefault((cell.entity_id, type_id), []).append(
                (annotation.table_id, confidence)
            )

    # ------------------------------------------------------------------
    def report(self) -> AugmentationReport:
        """Aggregate the accumulated evidence into ranked proposals."""
        report = AugmentationReport()
        for (relation_id, subject, object_), evidence in sorted(
            self._tuple_support.items()
        ):
            confidence = sum(score for _t, score in evidence) / len(evidence)
            if confidence < self.min_confidence:
                continue
            report.tuples.append(
                TupleProposal(
                    relation_id=relation_id,
                    subject=subject,
                    object_=object_,
                    support=len(evidence),
                    confidence=confidence,
                    source_tables=tuple(sorted({t for t, _s in evidence})),
                )
            )
        for (entity_id, type_id), evidence in sorted(self._link_support.items()):
            confidence = sum(score for _t, score in evidence) / len(evidence)
            if confidence < self.min_confidence:
                continue
            report.instance_links.append(
                InstanceLinkProposal(
                    entity_id=entity_id,
                    type_id=type_id,
                    support=len(evidence),
                    confidence=confidence,
                    source_tables=tuple(sorted({t for t, _s in evidence})),
                )
            )
        report.tuples.sort(key=lambda p: (-p.support, -p.confidence, p.relation_id))
        report.instance_links.sort(
            key=lambda p: (-p.support, -p.confidence, p.entity_id)
        )
        return report


def recovered_fraction(
    proposals: list[TupleProposal],
    truth_catalog: Catalog,
    view_catalog: Catalog,
) -> dict[str, float]:
    """Precision/recall of tuple proposals against the dropped tuples.

    A proposal is *correct* when the tuple exists in ``truth_catalog``; the
    recall denominator is the set of tuples present in the truth but missing
    from the annotator's ``view_catalog``.
    """
    correct = sum(
        1
        for proposal in proposals
        if truth_catalog.relations.has_tuple(
            proposal.relation_id, proposal.subject, proposal.object_
        )
    )
    dropped = 0
    recovered = 0
    proposed = {
        (proposal.relation_id, proposal.subject, proposal.object_)
        for proposal in proposals
    }
    for relation_id in truth_catalog.relations:
        if relation_id not in view_catalog.relations:
            continue
        for subject, object_ in truth_catalog.relations.tuples(relation_id):
            if view_catalog.relations.has_tuple(relation_id, subject, object_):
                continue
            dropped += 1
            if (relation_id, subject, object_) in proposed:
                recovered += 1
    return {
        "proposals": float(len(proposals)),
        "precision": correct / len(proposals) if proposals else 0.0,
        "recall_of_dropped": recovered / dropped if dropped else 0.0,
        "dropped": float(dropped),
    }
