"""Trainable weight container for the log-linear annotation model.

The joint distribution of the paper's equation (1) is a product of five
potential families, each ``exp(w_k · f_k)``.  :class:`AnnotationModel` holds
the five weight vectors plus the type-entity compatibility mode (the paper's
Figure 8 ablation axis) and round-trips to JSON.

``default_model`` provides hand-set weights that work reasonably before
training; :mod:`repro.core.learning` replaces them with trained values.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.features import (
    F1_FEATURE_NAMES,
    F2_FEATURE_NAMES,
    F3_FEATURE_NAMES,
    F4_FEATURE_NAMES,
    F5_FEATURE_NAMES,
    TypeEntityFeatureMode,
)

FORMAT_VERSION = 1

#: (family name, feature names) in canonical concatenation order.
FAMILY_LAYOUT: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("w1", F1_FEATURE_NAMES),
    ("w2", F2_FEATURE_NAMES),
    ("w3", F3_FEATURE_NAMES),
    ("w4", F4_FEATURE_NAMES),
    ("w5", F5_FEATURE_NAMES),
)


@dataclass
class AnnotationModel:
    """Weights ``w1..w5`` and the f3 compatibility mode."""

    w1: np.ndarray = field(
        default_factory=lambda: np.zeros(len(F1_FEATURE_NAMES))
    )
    w2: np.ndarray = field(
        default_factory=lambda: np.zeros(len(F2_FEATURE_NAMES))
    )
    w3: np.ndarray = field(
        default_factory=lambda: np.zeros(len(F3_FEATURE_NAMES))
    )
    w4: np.ndarray = field(
        default_factory=lambda: np.zeros(len(F4_FEATURE_NAMES))
    )
    w5: np.ndarray = field(
        default_factory=lambda: np.zeros(len(F5_FEATURE_NAMES))
    )
    mode: TypeEntityFeatureMode = TypeEntityFeatureMode.INV_SQRT_DIST

    def __post_init__(self) -> None:
        for name, expected in FAMILY_LAYOUT:
            vector = np.asarray(getattr(self, name), dtype=float)
            if vector.shape != (len(expected),):
                raise ValueError(
                    f"{name} must have {len(expected)} weights "
                    f"({', '.join(expected)}); got shape {vector.shape}"
                )
            setattr(self, name, vector)
        if isinstance(self.mode, str):
            self.mode = TypeEntityFeatureMode(self.mode)

    # ------------------------------------------------------------------
    # flat-vector view (used by the structured learner)
    # ------------------------------------------------------------------
    def as_flat(self) -> np.ndarray:
        """All weights concatenated in :data:`FAMILY_LAYOUT` order."""
        return np.concatenate([getattr(self, name) for name, _f in FAMILY_LAYOUT])

    @classmethod
    def from_flat(
        cls,
        flat: np.ndarray,
        mode: TypeEntityFeatureMode = TypeEntityFeatureMode.INV_SQRT_DIST,
    ) -> "AnnotationModel":
        """Inverse of :meth:`as_flat`."""
        parts: dict[str, np.ndarray] = {}
        offset = 0
        for name, feature_names in FAMILY_LAYOUT:
            width = len(feature_names)
            parts[name] = np.asarray(flat[offset : offset + width], dtype=float)
            offset += width
        if offset != len(flat):
            raise ValueError(
                f"flat vector has {len(flat)} weights, expected {offset}"
            )
        return cls(mode=mode, **parts)

    @staticmethod
    def flat_size() -> int:
        return sum(len(features) for _name, features in FAMILY_LAYOUT)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "format_version": FORMAT_VERSION,
            "mode": self.mode.value,
        }
        for name, feature_names in FAMILY_LAYOUT:
            payload[name] = dict(
                zip(feature_names, (float(x) for x in getattr(self, name)))
            )
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "AnnotationModel":
        version = payload.get("format_version", FORMAT_VERSION)
        if version != FORMAT_VERSION:
            raise ValueError(f"unsupported model format version: {version}")
        kwargs: dict[str, Any] = {
            "mode": TypeEntityFeatureMode(payload.get("mode", "inv_sqrt_dist"))
        }
        for name, feature_names in FAMILY_LAYOUT:
            entries = payload[name]
            kwargs[name] = np.array([entries[feature] for feature in feature_names])
        return cls(**kwargs)

    def fingerprint(self) -> str:
        """Content hash of the weights + mode (stable across processes).

        Artifact bundles record this in their manifest so a served model can
        be traced back to (and checked against) the training artifact.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def save(self, path: str | Path) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=1), encoding="utf-8"
        )

    @classmethod
    def load(cls, path: str | Path) -> "AnnotationModel":
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))

    def copy(self) -> "AnnotationModel":
        return AnnotationModel(
            w1=self.w1.copy(),
            w2=self.w2.copy(),
            w3=self.w3.copy(),
            w4=self.w4.copy(),
            w5=self.w5.copy(),
            mode=self.mode,
        )


def default_model(
    mode: TypeEntityFeatureMode = TypeEntityFeatureMode.INV_SQRT_DIST,
) -> AnnotationModel:
    """Hand-set weights usable before any training.

    The signs encode the obvious priors: similarity features positive, na
    biases negative (concrete labels must *earn* their score), functionality
    violations negative.
    """
    # the value columns line up with the per-weight comments
    # fmt: off
    return AnnotationModel(
        #            cosine soft  jac   dice  exact bias
        w1=np.array([2.0,   1.0,  0.5,  0.5,  1.0,  -1.6]),
        w2=np.array([1.0,   0.5,  0.25, 0.25, 0.5,  -0.5]),
        #            dist   idf   contained
        w3=np.array([1.5,   1.0,  0.5]),
        #            schema subj_part obj_part bias
        w4=np.array([1.0,   0.5,      0.5,     -0.75]),
        #            tuple  violation
        w5=np.array([2.0,   -1.0]),
        mode=mode,
    )
    # fmt: on
