"""The paper's baseline annotators: LCA and Majority (Section 4.5).

Both start from the same candidate entity sets ``Erc`` as the collective
model and differ in how they pick column types:

* **LCA** — a type qualifies only when *every* row could belong to it
  (intersection over rows of the candidate-ancestor sets), and only minimal
  such types are kept.  This over-generalises badly under missing links
  (Appendix F): one unreachable entity pushes the answer to the root.
* **Majority(F)** — a type qualifies when more than ``F%`` of rows support
  it.  ``F = 100`` recovers LCA; the paper's Majority uses ``F = 50`` and its
  drill-down sweeps the thresholds in between (best ≈ 60%, still below
  Collective).

Both report a *set* of types per column (evaluated with F1).  Entity
assignment: LCA restricts each cell to the chosen type and maximises
``φ1 · φ3`` (the Figure-2 idea); Majority labels each cell independently by
``φ1`` alone, as described in Section 4.5.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.annotation import (
    CellAnnotation,
    ColumnAnnotation,
    TableAnnotation,
)
from repro.core.model import AnnotationModel, default_model
from repro.core.problem import NA, AnnotationProblem, FeatureComputer


@dataclass
class BaselineResult:
    """Baseline output: a type *set* per column plus a point annotation.

    ``annotation`` carries one representative type per column (the most
    specific of ``column_type_sets``) so baselines can flow through the same
    downstream code as the collective annotator, while evaluation of type F1
    uses the full sets.
    """

    annotation: TableAnnotation
    column_type_sets: dict[int, set[str]] = field(default_factory=dict)


class LCAAnnotator:
    """Least-common-ancestor baseline (Section 4.5.1)."""

    def __init__(self, features: FeatureComputer, model: AnnotationModel | None = None):
        self.features = features
        self.model = model if model is not None else default_model()

    def annotate(self, problem: AnnotationProblem) -> BaselineResult:
        catalog = self.features.catalog
        annotation = TableAnnotation(table_id=problem.table.table_id)
        annotation.diagnostics["method"] = "lca"
        type_sets: dict[int, set[str]] = {}
        for column_index in range(problem.table.n_columns):
            # Strictly per Section 4.5.1 the intersection runs over *all*
            # rows: a cell whose candidate set is empty contributes an empty
            # ancestor union and empties the whole intersection.  This is the
            # brittleness the paper criticises ("insisting on a brittle
            # choice like LCA may be damaging").
            common: set[str] | None = None
            for row in range(problem.table.n_rows):
                cell = problem.cells.get((row, column_index))
                ancestors: set[str] = set()
                if cell is not None:
                    for candidate in cell.candidates:
                        ancestors.update(catalog.type_ancestors(candidate.entity_id))
                common = ancestors if common is None else common & ancestors
                if not common:
                    break
            common = common or set()
            minimal = catalog.types.minimal_elements(common)
            type_sets[column_index] = minimal
            representative = _most_specific(catalog, minimal)
            annotation.columns[column_index] = ColumnAnnotation(
                column=column_index, type_id=representative
            )
            _assign_cells_constrained(
                problem,
                annotation,
                self.model,
                self.features,
                column_index,
                representative,
            )
        # Cells in columns whose intersection came up empty are forced to na:
        # in the multiplicative Figure-2 reading, phi3(na-type, E) carries no
        # support for any concrete entity.
        for (row, column_index) in problem.cells:
            if (row, column_index) not in annotation.cells:
                annotation.cells[(row, column_index)] = CellAnnotation(
                    row=row, column=column_index, entity_id=NA, score=0.0
                )
        return BaselineResult(annotation=annotation, column_type_sets=type_sets)


class MajorityAnnotator:
    """Majority-vote baseline with threshold ``F`` percent (Section 4.5.2)."""

    def __init__(
        self,
        features: FeatureComputer,
        model: AnnotationModel | None = None,
        threshold_percent: float = 50.0,
    ):
        if not 0.0 < threshold_percent <= 100.0:
            raise ValueError(
                f"threshold_percent must be in (0, 100]: {threshold_percent}"
            )
        self.features = features
        self.model = model if model is not None else default_model()
        self.threshold_percent = threshold_percent

    def annotate(self, problem: AnnotationProblem) -> BaselineResult:
        catalog = self.features.catalog
        annotation = TableAnnotation(table_id=problem.table.table_id)
        annotation.diagnostics["method"] = f"majority@{self.threshold_percent:g}"
        type_sets: dict[int, set[str]] = {}
        for column_index in range(problem.table.n_columns):
            votes: dict[str, int] = {}
            n_voting_rows = 0
            for row in range(problem.table.n_rows):
                cell = problem.cells.get((row, column_index))
                if cell is None:
                    continue
                n_voting_rows += 1
                row_types: set[str] = set()
                for candidate in cell.candidates:
                    row_types.update(catalog.type_ancestors(candidate.entity_id))
                for type_id in row_types:
                    votes[type_id] = votes.get(type_id, 0) + 1
            if not n_voting_rows:
                annotation.columns[column_index] = ColumnAnnotation(
                    column=column_index, type_id=NA
                )
                type_sets[column_index] = set()
                continue
            needed = self.threshold_percent / 100.0 * n_voting_rows
            # strict majority at F<100; at F=100 require all rows (LCA)
            qualifying = {
                type_id
                for type_id, count in votes.items()
                if (count >= needed if self.threshold_percent == 100.0 else count > needed)
            }
            minimal = catalog.types.minimal_elements(qualifying)
            type_sets[column_index] = minimal
            representative = _most_specific(catalog, minimal)
            annotation.columns[column_index] = ColumnAnnotation(
                column=column_index, type_id=representative
            )
        _fill_unassigned_cells(problem, annotation, self.model)
        return BaselineResult(annotation=annotation, column_type_sets=type_sets)


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _most_specific(catalog, type_ids: set[str]) -> str | None:
    """Deterministic representative: highest IDF specificity, then id."""
    if not type_ids:
        return NA
    return max(
        sorted(type_ids),
        key=lambda type_id: catalog.type_idf_specificity(type_id),
    )


def _assign_cells_constrained(
    problem: AnnotationProblem,
    annotation: TableAnnotation,
    model: AnnotationModel,
    features: FeatureComputer,
    column_index: int,
    type_id: str | None,
) -> None:
    """Figure-2 style cell assignment given a fixed column type.

    Entities are *hard-constrained* to the chosen type: in the multiplicative
    form of Figure 2, an entity with ``E ∉+ T`` has φ3 support zero, so only
    contained candidates compete (on ``φ1 · φ3``); a cell with no contained
    candidate falls to na.  The LCA representative type may not be among the
    column's cached type candidates (minimal common ancestors can sit above
    them), so φ3 is fetched through the memoised :class:`FeatureComputer`
    rather than the problem's f3 cache.
    """
    catalog = features.catalog
    for row in range(problem.table.n_rows):
        cell = problem.cells.get((row, column_index))
        if cell is None:
            continue
        if type_id is NA:
            # a killed column (empty intersection) carries no phi3 support
            # for any concrete entity: every cell falls to na
            annotation.cells[(row, column_index)] = CellAnnotation(
                row=row, column=column_index, entity_id=NA, score=0.0
            )
            continue
        scores = np.concatenate(([0.0], cell.f1 @ model.w1))
        for index, candidate in enumerate(cell.candidates, start=1):
            if not catalog.is_instance(candidate.entity_id, type_id):
                scores[index] = float("-inf")
            else:
                f3 = features.f3(type_id, candidate.entity_id)
                scores[index] += float(f3 @ model.w3)
        chosen = int(scores.argmax())
        annotation.cells[(row, column_index)] = CellAnnotation(
            row=row,
            column=column_index,
            entity_id=cell.labels[chosen],
            score=float(scores[chosen]),
        )


def _fill_unassigned_cells(
    problem: AnnotationProblem,
    annotation: TableAnnotation,
    model: AnnotationModel,
) -> None:
    """Per-cell φ1-argmax for cells not yet labelled (Majority's rule)."""
    for (row, column_index), cell in problem.cells.items():
        if (row, column_index) in annotation.cells:
            continue
        unary = np.concatenate(([0.0], cell.f1 @ model.w1))
        chosen = int(unary.argmax())
        annotation.cells[(row, column_index)] = CellAnnotation(
            row=row,
            column=column_index,
            entity_id=cell.labels[chosen],
            score=float(unary[chosen]),
        )
