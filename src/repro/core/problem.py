"""Per-table annotation problems: candidate spaces, feature caches, graphs.

An :class:`AnnotationProblem` is everything about one table that does *not*
depend on the model weights: the candidate label spaces (``Erc``, ``Tc``,
``Bcc'`` — each with ``na`` at domain position 0) and the raw feature arrays
for every concrete label combination.  Given a weight vector the problem is
turned into a :class:`~repro.graph.factor_graph.FactorGraph` (potentials are
dot products) in :func:`build_factor_graph`, and — for the structured
learner — any full assignment is turned into its joint feature vector in
:func:`joint_feature_vector`.

Separating the two matters twice: feature extraction dominates runtime (the
paper's Figure 7: ~80% lemma probing + similarities, <1% inference), and the
learner re-scores the same problem under many weight vectors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.catalog.catalog import Catalog
from repro.core.candidates import CandidateEntity, CandidateGenerator
from repro.core.features import (
    TypeEntityFeatureMode,
    relation_entities_features,
    text_lemma_features,
    header_absent_features,
    type_entity_features,
)
from repro.core.model import AnnotationModel
from repro.graph.compiled import CompiledFactorGraph
from repro.graph.factor_graph import FactorGraph
from repro.tables.generator import base_relation
from repro.tables.model import Table

#: The "no annotation" label; always domain position 0.
NA = None


class FeatureComputer:
    """Feature evaluation against one catalog, with cross-table memoisation.

    Two memoisation layers exist.  The element caches below (f1..f5 per
    label) are always on, as in the seed implementation.  ``block_cache``,
    when attached (the annotation pipeline does this), additionally memoises
    whole *assembled* feature arrays keyed by the candidate-space tuples —
    profiling shows the per-row stacking in :func:`build_problem`, not
    retrieval, dominates candidate time on corpora with repeated cells.
    """

    def __init__(
        self,
        catalog: Catalog,
        mode: TypeEntityFeatureMode,
        generator: CandidateGenerator,
    ) -> None:
        self.catalog = catalog
        self.mode = mode
        self.generator = generator
        #: optional shared LRU for assembled blocks (set by the pipeline);
        #: anything with get(key)/put(key, value) semantics works
        self.block_cache = None
        # keyed by catalog ids only — bounded by catalog size, unlike the
        # text-keyed block cache which is therefore LRU-bounded instead
        self._f3_cache: dict[tuple[str, str], np.ndarray] = {}
        self._f4_side_cache: dict[tuple[str, str], tuple[float, float, float, float]] = {}
        self._f5_cache: dict[tuple[str, str, str], np.ndarray] = {}

    def _block(self, key: tuple, build) -> np.ndarray:
        """Assembled-array memoisation through ``block_cache`` when attached."""
        cache = self.block_cache
        if cache is None:
            return build()
        cached = cache.get(key)
        if cached is None:
            cached = build()
            cache.put(key, cached)
        return cached

    # -- assembled blocks (keyed by candidate-space tuples) ---------------
    def f1_block(
        self, cell_text: str, entity_ids: tuple[str, ...]
    ) -> np.ndarray:
        """f1 rows for one cell's candidate list, shape (n_entities, |f1|)."""
        return self._block(
            ("f1", cell_text, entity_ids),
            lambda: np.stack([self.f1(cell_text, e) for e in entity_ids]),
        )

    def f2_block(
        self, header_text: str | None, type_ids: tuple[str, ...]
    ) -> np.ndarray:
        """f2 rows for one column's candidate types, shape (n_types, |f2|)."""
        return self._block(
            ("f2", header_text, type_ids),
            lambda: np.stack([self.f2(header_text, t) for t in type_ids]),
        )

    def f3_block(
        self, type_ids: tuple[str, ...], entity_ids: tuple[str, ...]
    ) -> np.ndarray:
        """f3 grid for one cell, shape (n_types, n_entities, |f3|)."""
        return self._block(
            ("f3", type_ids, entity_ids),
            lambda: np.stack(
                [
                    np.stack([self.f3(t, e) for e in entity_ids])
                    for t in type_ids
                ]
            ),
        )

    def f4_block(
        self,
        relation_labels: tuple[str, ...],
        left_types: tuple[str, ...],
        right_types: tuple[str, ...],
    ) -> np.ndarray:
        """Cached :meth:`f4_table` (same shape and contents)."""
        return self._block(
            ("f4", relation_labels, left_types, right_types),
            lambda: self.f4_table(relation_labels, left_types, right_types),
        )

    def f5_block(
        self,
        labels: tuple[str, ...],
        left_ids: tuple[str, ...],
        right_ids: tuple[str, ...],
    ) -> np.ndarray:
        """f5 grid for one row of a pair, shape (n_labels, n_left, n_right, |f5|)."""

        def build() -> np.ndarray:
            block = np.zeros((len(labels), len(left_ids), len(right_ids), 2))
            for b_index, label in enumerate(labels):
                for e_index, left_id in enumerate(left_ids):
                    for o_index, right_id in enumerate(right_ids):
                        block[b_index, e_index, o_index] = self.f5(
                            label, left_id, right_id
                        )
            return block

        return self._block(("f5", labels, left_ids, right_ids), build)

    # -- f1 / f2 --------------------------------------------------------
    def f1(self, cell_text: str, entity_id: str) -> np.ndarray:
        lemmas = self.catalog.entities.lemmas(entity_id)
        return text_lemma_features(cell_text, lemmas, self.generator.lemma_tfidf)

    def f2(self, header_text: str | None, type_id: str) -> np.ndarray:
        if header_text is None or not header_text.strip():
            return header_absent_features()
        lemmas = self.catalog.types.lemmas(type_id)
        return text_lemma_features(header_text, lemmas, self.generator.lemma_tfidf)

    # -- f3 ---------------------------------------------------------------
    def f3(self, type_id: str, entity_id: str) -> np.ndarray:
        key = (type_id, entity_id)
        cached = self._f3_cache.get(key)
        if cached is None:
            cached = type_entity_features(self.catalog, type_id, entity_id, self.mode)
            self._f3_cache[key] = cached
        return cached

    # -- f4 ---------------------------------------------------------------
    def f4_sides(
        self, relation_id: str, type_id: str
    ) -> tuple[float, float, float, float]:
        """Cached per-(relation, type) pieces of f4.

        Returns ``(is_sub_of_subject_schema, is_sub_of_object_schema,
        subject_participation, object_participation)``; f4 for a pair of
        types is composed from two of these tuples in
        :meth:`f4_table`.
        """
        key = (relation_id, type_id)
        cached = self._f4_side_cache.get(key)
        if cached is None:
            relation = self.catalog.relations.get(relation_id)
            members = self.catalog.entities_of_type(type_id)
            subjects = self.catalog.relations.participating_subjects(relation_id)
            objects = self.catalog.relations.participating_objects(relation_id)
            denominator = max(len(members), 1)
            cached = (
                float(self.catalog.types.is_subtype(type_id, relation.subject_type)),
                float(self.catalog.types.is_subtype(type_id, relation.object_type)),
                len(members & subjects) / denominator,
                len(members & objects) / denominator,
            )
            self._f4_side_cache[key] = cached
        return cached

    def f4_table(
        self,
        relation_labels: tuple[str, ...],
        left_types: tuple[str, ...],
        right_types: tuple[str, ...],
    ) -> np.ndarray:
        """Dense f4 array, shape (n_labels, n_left, n_right, 4)."""
        table = np.zeros((len(relation_labels), len(left_types), len(right_types), 4))
        for b_index, label in enumerate(relation_labels):
            relation_id, reverse = base_relation(label)
            left_sides = [self.f4_sides(relation_id, t) for t in left_types]
            right_sides = [self.f4_sides(relation_id, t) for t in right_types]
            if reverse:
                # subject role lives on the right column
                subj_ind = np.array([s[0] for s in right_sides])
                obj_ind = np.array([s[1] for s in left_sides])
                subj_part = np.array([s[2] for s in right_sides])
                obj_part = np.array([s[3] for s in left_sides])
                table[b_index, :, :, 0] = np.outer(obj_ind, subj_ind)
                table[b_index, :, :, 1] = np.broadcast_to(
                    subj_part[None, :], (len(left_types), len(right_types))
                )
                table[b_index, :, :, 2] = np.broadcast_to(
                    obj_part[:, None], (len(left_types), len(right_types))
                )
            else:
                subj_ind = np.array([s[0] for s in left_sides])
                obj_ind = np.array([s[1] for s in right_sides])
                subj_part = np.array([s[2] for s in left_sides])
                obj_part = np.array([s[3] for s in right_sides])
                table[b_index, :, :, 0] = np.outer(subj_ind, obj_ind)
                table[b_index, :, :, 1] = np.broadcast_to(
                    subj_part[:, None], (len(left_types), len(right_types))
                )
                table[b_index, :, :, 2] = np.broadcast_to(
                    obj_part[None, :], (len(left_types), len(right_types))
                )
            table[b_index, :, :, 3] = 1.0
        return table

    # -- f5 ---------------------------------------------------------------
    def f5(self, label: str, left_entity: str, right_entity: str) -> np.ndarray:
        key = (label, left_entity, right_entity)
        cached = self._f5_cache.get(key)
        if cached is None:
            cached = relation_entities_features(
                self.catalog, label, left_entity, right_entity
            )
            self._f5_cache[key] = cached
        return cached


@dataclass
class CellSpace:
    """Candidate space and f1 features of one cell."""

    row: int
    column: int
    text: str
    candidates: list[CandidateEntity]
    #: domain = (NA,) + concrete entity ids
    labels: tuple[str | None, ...]
    #: f1 features of concrete labels, shape (n_concrete, |f1|)
    f1: np.ndarray

    @property
    def variable_name(self) -> str:
        return f"e:{self.row},{self.column}"


@dataclass
class ColumnSpace:
    """Candidate space and f2/f3 features of one column."""

    column: int
    header: str | None
    #: domain = (NA,) + concrete type ids
    labels: tuple[str | None, ...]
    #: f2 features of concrete labels, shape (n_concrete, |f2|)
    f2: np.ndarray
    #: per-row f3 arrays, shape (n_concrete_types, n_concrete_entities, |f3|)
    f3: dict[int, np.ndarray] = field(default_factory=dict)

    @property
    def variable_name(self) -> str:
        return f"t:{self.column}"


@dataclass
class PairSpace:
    """Candidate space and f4/f5 features of an ordered column pair."""

    left: int
    right: int
    #: domain = (NA,) + concrete relation labels (possibly ``^-1``-suffixed)
    labels: tuple[str | None, ...]
    #: f4 array, shape (n_concrete, n_left_types, n_right_types, |f4|)
    f4: np.ndarray
    #: per-row f5 arrays, shape (n_concrete, n_left_ents, n_right_ents, |f5|)
    f5: dict[int, np.ndarray] = field(default_factory=dict)

    @property
    def variable_name(self) -> str:
        return f"b:{self.left},{self.right}"


@dataclass
class AnnotationProblem:
    """Everything weight-independent about annotating one table."""

    table: Table
    cells: dict[tuple[int, int], CellSpace]
    columns: dict[int, ColumnSpace]
    pairs: dict[tuple[int, int], PairSpace]

    def cell_labels(self, row: int, column: int) -> tuple[str | None, ...]:
        space = self.cells.get((row, column))
        return space.labels if space else (NA,)

    def stats(self) -> dict[str, float]:
        """Candidate-space statistics (feeds the §6.1.1 candidate bench)."""
        entity_counts = [len(space.candidates) for space in self.cells.values()]
        type_counts = [len(space.labels) - 1 for space in self.columns.values()]
        relation_counts = [len(space.labels) - 1 for space in self.pairs.values()]
        return {
            "cells_with_candidates": len(entity_counts),
            "avg_entity_candidates": (
                float(np.mean(entity_counts)) if entity_counts else 0.0
            ),
            "avg_type_candidates": float(np.mean(type_counts)) if type_counts else 0.0,
            "avg_relation_candidates": (
                float(np.mean(relation_counts)) if relation_counts else 0.0
            ),
        }


def build_problem(
    table: Table,
    generator: CandidateGenerator,
    features: FeatureComputer,
    max_column_pairs: int = 12,
) -> AnnotationProblem:
    """Construct the candidate spaces and feature caches for one table.

    Cells without candidates (numeric/blank/unmatched) get no variable — their
    label is forced to na.  Column pairs are considered for every ordered pair
    of columns that both carry a type variable; pairs with no candidate
    relation get no variable.  ``max_column_pairs`` caps quadratic blow-up on
    very wide tables (the widest pairs by candidate support are kept).
    """
    cells: dict[tuple[int, int], CellSpace] = {}
    column_candidates: dict[int, list[list[CandidateEntity]]] = {}
    # batch-capable generators (the batched candidate engine, the pipeline's
    # caching front) resolve every cell of the table in one retrieval pass;
    # the scalar reference generator probes per cell below
    cell_candidates_batch = getattr(generator, "cell_candidates_batch", None)
    batched: list[list[CandidateEntity]] | None = None
    if cell_candidates_batch is not None:
        batched = cell_candidates_batch(
            [
                table.cell(row, column)
                for column in range(table.n_columns)
                for row in range(table.n_rows)
            ]
        )
    for column in range(table.n_columns):
        per_row: list[list[CandidateEntity]] = []
        for row in range(table.n_rows):
            candidates = (
                batched[column * table.n_rows + row]
                if batched is not None
                else generator.cell_candidates(table.cell(row, column))
            )
            per_row.append(candidates)
            if candidates:
                f1 = features.f1_block(
                    table.cell(row, column),
                    tuple(c.entity_id for c in candidates),
                )
                cells[(row, column)] = CellSpace(
                    row=row,
                    column=column,
                    text=table.cell(row, column),
                    candidates=candidates,
                    labels=(NA,) + tuple(c.entity_id for c in candidates),
                    f1=f1,
                )
        column_candidates[column] = per_row

    columns: dict[int, ColumnSpace] = {}
    for column in range(table.n_columns):
        type_ids = generator.column_type_candidates(column_candidates[column])
        if not type_ids:
            continue
        header = table.header(column)
        f2 = features.f2_block(header, tuple(type_ids))
        space = ColumnSpace(
            column=column,
            header=header,
            labels=(NA,) + tuple(type_ids),
            f2=f2,
        )
        for row in range(table.n_rows):
            cell = cells.get((row, column))
            if cell is None:
                continue
            space.f3[row] = features.f3_block(
                tuple(type_ids),
                tuple(c.entity_id for c in cell.candidates),
            )
        columns[column] = space

    pairs: dict[tuple[int, int], PairSpace] = {}
    candidate_pairs: list[tuple[int, int, list[str]]] = []
    for left in sorted(columns):
        for right in sorted(columns):
            if left >= right:
                continue
            labels = generator.relation_candidates(
                column_candidates[left], column_candidates[right]
            )
            if labels:
                candidate_pairs.append((left, right, labels))
    candidate_pairs.sort(key=lambda item: (-len(item[2]), item[0], item[1]))
    for left, right, labels in candidate_pairs[:max_column_pairs]:
        left_types = columns[left].labels[1:]
        right_types = columns[right].labels[1:]
        f4 = features.f4_block(tuple(labels), left_types, right_types)
        space = PairSpace(
            left=left,
            right=right,
            labels=(NA,) + tuple(labels),
            f4=f4,
        )
        for row in range(table.n_rows):
            left_cell = cells.get((row, left))
            right_cell = cells.get((row, right))
            if left_cell is None or right_cell is None:
                continue
            space.f5[row] = features.f5_block(
                tuple(labels),
                tuple(c.entity_id for c in left_cell.candidates),
                tuple(c.entity_id for c in right_cell.candidates),
            )
        pairs[(left, right)] = space

    return AnnotationProblem(table=table, cells=cells, columns=columns, pairs=pairs)


# ----------------------------------------------------------------------
# factor-graph construction
# ----------------------------------------------------------------------
def build_factor_graph(
    problem: AnnotationProblem,
    model: AnnotationModel,
    with_relations: bool = True,
) -> FactorGraph:
    """Materialise equation (1) as a log-space factor graph.

    Potentials for any combination involving na are identically zero ("no
    feature is fired if label na is involved").  With
    ``with_relations=False`` the bcc'/φ4/φ5 parts are omitted — the
    polynomial special case of Section 4.4.1.
    """
    graph = FactorGraph()
    for space in problem.cells.values():
        unary = np.concatenate(([0.0], space.f1 @ model.w1))
        graph.add_variable(space.variable_name, space.labels, unary, kind="entity")
    for space in problem.columns.values():
        unary = np.concatenate(([0.0], space.f2 @ model.w2))
        graph.add_variable(space.variable_name, space.labels, unary, kind="type")
        for row, f3 in space.f3.items():
            table = np.zeros((len(space.labels), f3.shape[1] + 1))
            table[1:, 1:] = f3 @ model.w3
            graph.add_factor(
                f"phi3:{row},{space.column}",
                (space.variable_name, f"e:{row},{space.column}"),
                table,
                kind="phi3",
            )
    if not with_relations:
        return graph
    for space in problem.pairs.values():
        left_var = f"t:{space.left}"
        right_var = f"t:{space.right}"
        graph.add_variable(
            space.variable_name,
            space.labels,
            np.zeros(len(space.labels)),
            kind="relation",
        )
        n_left_types = len(problem.columns[space.left].labels)
        n_right_types = len(problem.columns[space.right].labels)
        phi4 = np.zeros((len(space.labels), n_left_types, n_right_types))
        phi4[1:, 1:, 1:] = space.f4 @ model.w4
        graph.add_factor(
            f"phi4:{space.left},{space.right}",
            (space.variable_name, left_var, right_var),
            phi4,
            kind="phi4",
        )
        for row, f5 in space.f5.items():
            phi5 = np.zeros(
                (len(space.labels), f5.shape[1] + 1, f5.shape[2] + 1)
            )
            phi5[1:, 1:, 1:] = f5 @ model.w5
            graph.add_factor(
                f"phi5:{row}:{space.left},{space.right}",
                (
                    space.variable_name,
                    f"e:{row},{space.left}",
                    f"e:{row},{space.right}",
                ),
                phi5,
                kind="phi5",
            )
    return graph


# ----------------------------------------------------------------------
# compiled graphs (batched inference)
# ----------------------------------------------------------------------
def compiled_graph_cache_key(
    problem: AnnotationProblem,
    model: AnnotationModel,
    with_relations: bool = True,
) -> tuple:
    """Content key under which a compiled factor graph may be reused.

    For a frozen catalog and candidate generator, every potential in the
    graph is a pure function of the candidate label spaces, the cell/header
    texts and the model weights — so two tables that agree on those (typical
    in corpora with recurring tables) compile to identical graphs.  Variable
    names encode (row, column) positions, so the spaces are keyed by
    position, not just content.
    """
    cells = tuple(
        (row, column, space.text, space.labels)
        for (row, column), space in sorted(problem.cells.items())
    )
    columns = tuple(
        (column, space.header, space.labels)
        for column, space in sorted(problem.columns.items())
    )
    pairs = (
        tuple(
            (left, right, space.labels)
            for (left, right), space in sorted(problem.pairs.items())
        )
        if with_relations
        else ()
    )
    return (
        "compiled",
        model.as_flat().tobytes(),
        model.mode.value,
        with_relations,
        cells,
        columns,
        pairs,
    )


def build_compiled_graph(
    problem: AnnotationProblem,
    model: AnnotationModel,
    with_relations: bool = True,
    cache=None,
) -> CompiledFactorGraph:
    """:func:`build_factor_graph` plus compilation into stacked blocks.

    The factor tables are built exactly as in :func:`build_factor_graph`
    (matrix products against the problem's cached feature blocks — the
    blocks themselves are shared, never copied) and then bucketed by
    (kind, shape) into contiguous tensors for the batched engine.

    ``cache`` (``get``/``put`` semantics, e.g. the pipeline's LRU) memoises
    the whole compiled graph under :func:`compiled_graph_cache_key`, so
    recurring tables in a corpus skip both potential construction and
    compilation.  Cached graphs are shared objects and must not be mutated.
    """
    if cache is not None:
        key = compiled_graph_cache_key(problem, model, with_relations)
        cached = cache.get(key)
        if cached is not None:
            return cached
    graph = build_factor_graph(problem, model, with_relations=with_relations)
    compiled = CompiledFactorGraph(graph)
    if cache is not None:
        cache.put(key, compiled)
    return compiled


# ----------------------------------------------------------------------
# joint feature map (structured learning)
# ----------------------------------------------------------------------
def joint_feature_vector(
    problem: AnnotationProblem,
    assignment: dict[str, str | None],
    with_relations: bool = True,
) -> np.ndarray:
    """The joint feature map Φ(table, assignment), flattened per FAMILY_LAYOUT.

    ``assignment`` maps variable names (``e:r,c`` / ``t:c`` / ``b:l,r``) to
    labels; missing variables count as na.  na labels contribute nothing, so
    ``w · Φ`` equals the factor graph's log-score.
    """
    from repro.core.features import (
        F1_FEATURE_NAMES,
        F2_FEATURE_NAMES,
        F3_FEATURE_NAMES,
        F4_FEATURE_NAMES,
        F5_FEATURE_NAMES,
    )

    phi1 = np.zeros(len(F1_FEATURE_NAMES))
    phi2 = np.zeros(len(F2_FEATURE_NAMES))
    phi3 = np.zeros(len(F3_FEATURE_NAMES))
    phi4 = np.zeros(len(F4_FEATURE_NAMES))
    phi5 = np.zeros(len(F5_FEATURE_NAMES))

    def label_index(labels: tuple[str | None, ...], label: str | None) -> int | None:
        try:
            return labels.index(label)
        except ValueError:
            return None

    for space in problem.cells.values():
        label = assignment.get(space.variable_name, NA)
        index = label_index(space.labels, label)
        if index is None or index == 0:
            continue
        phi1 += space.f1[index - 1]
    for space in problem.columns.values():
        type_label = assignment.get(space.variable_name, NA)
        type_index = label_index(space.labels, type_label)
        if type_index is None or type_index == 0:
            continue
        phi2 += space.f2[type_index - 1]
        for row, f3 in space.f3.items():
            cell = problem.cells[(row, space.column)]
            entity_label = assignment.get(cell.variable_name, NA)
            entity_index = label_index(cell.labels, entity_label)
            if entity_index is None or entity_index == 0:
                continue
            phi3 += f3[type_index - 1, entity_index - 1]
    if with_relations:
        for space in problem.pairs.values():
            relation_label = assignment.get(space.variable_name, NA)
            relation_index = label_index(space.labels, relation_label)
            if relation_index is None or relation_index == 0:
                continue
            left_space = problem.columns[space.left]
            right_space = problem.columns[space.right]
            left_type_index = label_index(
                left_space.labels, assignment.get(left_space.variable_name, NA)
            )
            right_type_index = label_index(
                right_space.labels, assignment.get(right_space.variable_name, NA)
            )
            if (
                left_type_index is not None
                and right_type_index is not None
                and left_type_index > 0
                and right_type_index > 0
            ):
                phi4 += space.f4[
                    relation_index - 1, left_type_index - 1, right_type_index - 1
                ]
            for row, f5 in space.f5.items():
                left_cell = problem.cells[(row, space.left)]
                right_cell = problem.cells[(row, space.right)]
                left_index = label_index(
                    left_cell.labels, assignment.get(left_cell.variable_name, NA)
                )
                right_index = label_index(
                    right_cell.labels, assignment.get(right_cell.variable_name, NA)
                )
                if (
                    left_index is None
                    or right_index is None
                    or left_index == 0
                    or right_index == 0
                ):
                    continue
                phi5 += f5[relation_index - 1, left_index - 1, right_index - 1]
    return np.concatenate([phi1, phi2, phi3, phi4, phi5])
