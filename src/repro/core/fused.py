"""Bucket-level fused annotation: whole groups of tables as one BP run.

This is the corpus-level fast path behind ``AnnotatorConfig.fusion ==
"bucket"``.  Given a bucket of tables (grouped by shape signature in
:mod:`repro.pipeline.planner`), it

1. **prefetches candidates** for every distinct cell of the bucket in one
   ``cell_candidates_batch`` call and memoises the ``Tc`` / ``Bcc'`` passes
   on candidate-id tuples (both are pure functions of the candidate entity
   ids against a frozen catalog, so memo hits are exact),
2. **compiles one fused graph** for the whole bucket directly from the
   per-table :class:`~repro.core.problem.AnnotationProblem` spaces — the
   potentials are the same per-space matrix products
   :func:`~repro.core.problem.build_factor_graph` computes, written straight
   into the cross-table block tensors of :class:`~repro.graph.fused.FusedGraph`
   (no per-table ``FactorGraph`` / ``CompiledFactorGraph`` construction), and
3. **runs one** :class:`~repro.graph.fused.FusedMaxProductBP` schedule with
   per-table freezing, then decodes every table's annotation with vectorised
   argmax / margin computation.

The fused bundle (graph + decode metadata) is memoised in the annotator's
compiled-graph LRU under :func:`fused_cache_key` — the bucket signature plus
the tables' raw content.  Within one pipeline the catalog, candidate
generator and model are frozen, so table content determines the bundle;
recurring buckets skip candidate generation *and* compilation entirely.

Label/score equivalence with the per-table path is bit-exact (see the
ordering and padding analysis in :mod:`repro.graph.fused`); the per-table
``log_score`` diagnostic alone may differ in the last float digits because
the fused path sums factor scores in vectorised order.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.annotation import (
    CellAnnotation,
    ColumnAnnotation,
    RelationAnnotation,
    TableAnnotation,
)
from repro.core.annotator import AnnotationTiming, TableAnnotator
from repro.core.model import AnnotationModel
from repro.core.problem import NA, AnnotationProblem, build_problem
from repro.graph.compiled import ScatterPlan
from repro.graph.fused import FusedBlock, FusedGraph, FusedMaxProductBP
from repro.tables.model import Table


def fused_eligible(annotator: TableAnnotator) -> bool:
    """Whether the fused inference path reproduces this annotator's output.

    The fused engine implements exactly the batched engine's Figure-11 paper
    schedule over relation-bearing graphs; any other combination falls back
    to the per-table path (which the bucket planner still drives, so result
    ordering and caching behave identically).
    """
    config = annotator.config
    return (
        config.with_relations
        and config.engine == "batched"
        and config.schedule == "paper"
    )


# ----------------------------------------------------------------------
# bucket-level candidate prefetch
# ----------------------------------------------------------------------
class _BucketPrefetchGenerator:
    """Candidate-generator proxy that batches one bucket's retrieval.

    All distinct cell texts of the bucket go through a single
    ``cell_candidates_batch`` call up front (when the wrapped generator is
    batch-capable); ``column_type_candidates`` / ``relation_candidates`` are
    memoised on the candidate entity-id tuples, which fully determine their
    results against a frozen catalog.  Everything else delegates to the
    wrapped generator, so this proxy drops into
    :func:`~repro.core.problem.build_problem` unchanged.
    """

    def __init__(self, inner, tables: list[Table]) -> None:
        self._inner = inner
        self._cells: dict[str, list] = {}
        self._column_memo: dict[tuple, list] = {}
        self._pair_memo: dict[tuple, list] = {}
        texts: list[str] = []
        seen: set[str] = set()
        for table in tables:
            for column in range(table.n_columns):
                for row in range(table.n_rows):
                    text = table.cell(row, column)
                    if text not in seen:
                        seen.add(text)
                        texts.append(text)
        batch = getattr(inner, "cell_candidates_batch", None)
        if batch is not None and texts:
            self._cells = dict(zip(texts, batch(texts)))

    def cell_candidates(self, cell_text: str):
        found = self._cells.get(cell_text)
        if found is not None:
            return found
        return self._inner.cell_candidates(cell_text)

    def cell_candidates_batch(self, cell_texts: list[str]):
        if self._cells:
            return [self.cell_candidates(text) for text in cell_texts]
        inner_batch = getattr(self._inner, "cell_candidates_batch", None)
        if inner_batch is not None:
            return inner_batch(cell_texts)
        return [self._inner.cell_candidates(text) for text in cell_texts]

    def column_type_candidates(self, column_candidates):
        key = tuple(
            tuple(candidate.entity_id for candidate in cell)
            for cell in column_candidates
        )
        if key not in self._column_memo:
            self._column_memo[key] = self._inner.column_type_candidates(
                column_candidates
            )
        return self._column_memo[key]

    def relation_candidates(self, left_candidates, right_candidates):
        key = (
            tuple(
                tuple(candidate.entity_id for candidate in cell)
                for cell in left_candidates
            ),
            tuple(
                tuple(candidate.entity_id for candidate in cell)
                for cell in right_candidates
            ),
        )
        if key not in self._pair_memo:
            self._pair_memo[key] = self._inner.relation_candidates(
                left_candidates, right_candidates
            )
        return self._pair_memo[key]

    def __getattr__(self, name: str):
        return getattr(self._inner, name)


# ----------------------------------------------------------------------
# fused compilation
# ----------------------------------------------------------------------
@dataclass
class TableDecodeSpec:
    """Per-table decode metadata: variable ids, positions and label domains."""

    table_index: int
    n_columns: int
    n_variables: int
    n_factors: int
    #: (row, column, var_id, labels) per cell variable
    cells: list[tuple[int, int, int, tuple]]
    #: (column, var_id, labels) per type variable
    columns: list[tuple[int, int, tuple]]
    #: (left, right, var_id, labels) per relation variable
    pairs: list[tuple[int, int, int, tuple]]


@dataclass
class FusedBundle:
    """A compiled fused graph plus everything needed to decode it."""

    graph: FusedGraph
    specs: list[TableDecodeSpec]


def fused_cache_key(
    tables: list[Table],
    model: AnnotationModel,
    config,
    signature=None,
) -> tuple:
    """Content key under which a fused bundle may be reused.

    Valid within one pipeline (frozen catalog + candidate generator): the
    bundle is then a pure function of the tables' raw content, the candidate
    knobs and the model weights.  The bucket ``signature`` keys the entry to
    its shape class, and table ids are deliberately excluded so duplicated
    table content hits regardless of id.
    """
    content = tuple(
        (
            tuple(table.headers) if table.headers is not None else None,
            tuple(tuple(row) for row in table.cells),
        )
        for table in tables
    )
    return (
        "fused",
        model.as_flat().tobytes(),
        model.mode.value,
        signature,
        config.with_relations,
        config.top_k_entities,
        config.max_type_candidates,
        config.max_column_pairs,
        config.candidate_engine,
        content,
    )


def _stage_factor(
    staged: dict[str, list[list[tuple[int, np.ndarray, tuple[int, ...]]]]],
    rank_map: dict[str, dict[tuple[int, int], int]],
    kind: str,
    table_index: int,
    potential: np.ndarray,
    var_ids: tuple[int, ...],
) -> None:
    """File one factor under its per-table bucket rank.

    ``rank_map`` is per table: a table's first (ndim, head-size) bucket of a
    kind gets rank 0, its second rank 1, … — exactly the first-seen order
    :class:`~repro.graph.compiled.CompiledFactorGraph` creates per-table
    blocks in.  Fusing by rank (not by head size) preserves each table's
    scatter-add sequence, which is what makes the fused totals bit-identical.
    """
    key = (potential.ndim, potential.shape[0])
    ranks = rank_map[kind]
    rank = ranks.get(key)
    if rank is None:
        rank = len(ranks)
        ranks[key] = rank
    rows_by_rank = staged.setdefault(kind, [])
    while len(rows_by_rank) <= rank:
        rows_by_rank.append([])
    rows_by_rank[rank].append((table_index, potential, var_ids))


def build_fused_bundle(
    problems: list[AnnotationProblem],
    model: AnnotationModel,
    with_relations: bool = True,
) -> FusedBundle:
    """Compile one fused graph for a bucket of annotation problems.

    Potentials are the exact per-space matrix products of
    :func:`~repro.core.problem.build_factor_graph` (bit-identical entries);
    they are written straight into cross-table block tensors, skipping the
    per-table graph and compilation passes entirely.
    """
    sizes: list[int] = []
    unary_rows: list[np.ndarray] = []
    var_table_ids: list[int] = []
    specs: list[TableDecodeSpec] = []
    staged: dict[str, list[list[tuple[int, np.ndarray, tuple[int, ...]]]]] = {}

    for table_index, problem in enumerate(problems):
        local_ids: dict[str, int] = {}
        cells_meta: list[tuple[int, int, int, tuple]] = []
        columns_meta: list[tuple[int, int, tuple]] = []
        pairs_meta: list[tuple[int, int, int, tuple]] = []
        n_factors = 0
        rank_map: dict[str, dict[tuple[int, int], int]] = {
            "phi3": {},
            "phi4": {},
            "phi5": {},
        }

        for space in problem.cells.values():
            var_id = len(sizes)
            local_ids[space.variable_name] = var_id
            sizes.append(len(space.labels))
            unary_rows.append(np.concatenate(([0.0], space.f1 @ model.w1)))
            var_table_ids.append(table_index)
            cells_meta.append((space.row, space.column, var_id, space.labels))

        for space in problem.columns.values():
            var_id = len(sizes)
            local_ids[space.variable_name] = var_id
            sizes.append(len(space.labels))
            unary_rows.append(np.concatenate(([0.0], space.f2 @ model.w2)))
            var_table_ids.append(table_index)
            columns_meta.append((space.column, var_id, space.labels))
            for row, f3 in space.f3.items():
                potential = np.zeros(
                    (len(space.labels), f3.shape[1] + 1), dtype=np.float64
                )
                potential[1:, 1:] = f3 @ model.w3
                _stage_factor(
                    staged,
                    rank_map,
                    "phi3",
                    table_index,
                    potential,
                    (var_id, local_ids[f"e:{row},{space.column}"]),
                )
                n_factors += 1

        if with_relations:
            for space in problem.pairs.values():
                var_id = len(sizes)
                local_ids[space.variable_name] = var_id
                sizes.append(len(space.labels))
                unary_rows.append(np.zeros(len(space.labels), dtype=np.float64))
                var_table_ids.append(table_index)
                pairs_meta.append((space.left, space.right, var_id, space.labels))
                n_left = len(problem.columns[space.left].labels)
                n_right = len(problem.columns[space.right].labels)
                phi4 = np.zeros(
                    (len(space.labels), n_left, n_right), dtype=np.float64
                )
                phi4[1:, 1:, 1:] = space.f4 @ model.w4
                _stage_factor(
                    staged,
                    rank_map,
                    "phi4",
                    table_index,
                    phi4,
                    (
                        var_id,
                        local_ids[f"t:{space.left}"],
                        local_ids[f"t:{space.right}"],
                    ),
                )
                n_factors += 1
                for row, f5 in space.f5.items():
                    phi5 = np.zeros(
                        (len(space.labels), f5.shape[1] + 1, f5.shape[2] + 1),
                        dtype=np.float64,
                    )
                    phi5[1:, 1:, 1:] = f5 @ model.w5
                    _stage_factor(
                        staged,
                        rank_map,
                        "phi5",
                        table_index,
                        phi5,
                        (
                            var_id,
                            local_ids[f"e:{row},{space.left}"],
                            local_ids[f"e:{row},{space.right}"],
                        ),
                    )
                    n_factors += 1

        specs.append(
            TableDecodeSpec(
                table_index=table_index,
                n_columns=problem.table.n_columns,
                n_variables=len(local_ids),
                n_factors=n_factors,
                cells=cells_meta,
                columns=columns_meta,
                pairs=pairs_meta,
            )
        )

    sizes_array = np.array(sizes, dtype=np.intp)
    max_size = int(sizes_array.max()) if sizes_array.size else 1
    unaries = np.full((len(sizes), max_size), -np.inf, dtype=np.float64)
    for index, row in enumerate(unary_rows):
        unaries[index, : len(row)] = row

    blocks: list[FusedBlock] = []
    kind_blocks: dict[str, list[int]] = {}
    for kind in ("phi3", "phi4", "phi5"):
        for rows in staged.get(kind, ()):
            for group in _partition_rank_rows(rows):
                _append_fused_block(
                    blocks, kind_blocks, kind, group, sizes_array
                )

    graph = FusedGraph(
        sizes=sizes_array,
        unaries=unaries,
        var_table_ids=np.array(var_table_ids, dtype=np.intp),
        blocks=blocks,
        kind_blocks=kind_blocks,
        n_tables=len(problems),
    )
    return FusedBundle(graph=graph, specs=specs)


#: cross-table padding budget: a block may be at most this factor larger
#: than the sum of its tables' own padded volumes before it is split
_PADDING_WASTE_LIMIT = 1.75

#: never split unless it saves at least this many tensor elements — each
#: extra block costs a fixed handful of NumPy calls per half-step, which
#: dwarfs any padding saved on small blocks
_PADDING_SPLIT_ELEMENTS = 24576


def _partition_rank_rows(
    rows: list[tuple[int, np.ndarray, tuple[int, ...]]],
) -> list[list[tuple[int, np.ndarray, tuple[int, ...]]]]:
    """Split one rank group into blocks with bounded cross-table padding.

    Stacking every table's factors of a rank into one tensor pads each axis
    to the bucket-wide maximum; with content-dependent domain sizes (phi4's
    per-column type candidates especially) that can triple the arithmetic.
    Tables are sorted by their factor shape and greedily packed until the
    padded volume would exceed ``_PADDING_WASTE_LIMIT`` times the tables'
    own volumes.

    Regrouping *between* tables is bit-exact: messages are row-local, and a
    variable's scatter group consists of one table's rows only, so keeping
    each table's rows together (in order) preserves every per-variable
    float-summation sequence of the per-table engine.  Only splitting a
    single table's rows across blocks could change bits — never done here.
    """
    per_table: list[tuple[tuple[int, ...], int, list]] = []
    start = 0
    for end in range(1, len(rows) + 1):
        if end == len(rows) or rows[end][0] != rows[start][0]:
            group = rows[start:end]
            ndim = group[0][1].ndim
            shape = tuple(
                max(row[1].shape[axis] for row in group)
                for axis in range(ndim)
            )
            per_table.append((shape, group[0][0], group))
            start = end
    per_table.sort(key=lambda item: (item[0], item[1]))

    partitions: list[list] = []
    current: list = []
    current_shape: tuple[int, ...] = ()
    own_volume = 0
    for shape, _table_index, group in per_table:
        if current:
            merged = tuple(max(a, b) for a, b in zip(current_shape, shape))
            padded = (len(current) + len(group)) * int(np.prod(merged))
            own = own_volume + len(group) * int(np.prod(shape))
            if (
                padded <= _PADDING_WASTE_LIMIT * own
                or padded - own < _PADDING_SPLIT_ELEMENTS
            ):
                current += group
                current_shape = merged
                own_volume = own
                continue
            partitions.append(current)
        current = list(group)
        current_shape = shape
        own_volume = len(group) * int(np.prod(shape))
    if current:
        partitions.append(current)
    return partitions


def _append_fused_block(
    blocks: list[FusedBlock],
    kind_blocks: dict[str, list[int]],
    kind: str,
    rows: list[tuple[int, np.ndarray, tuple[int, ...]]],
    sizes_array: np.ndarray,
) -> None:
    """Stack one group of staged factors into a :class:`FusedBlock`."""
    ndim = rows[0][1].ndim
    shape = tuple(
        max(row[1].shape[axis] for row in rows) for axis in range(ndim)
    )
    tables = np.full((len(rows), *shape), -np.inf, dtype=np.float64)
    for slot, (_, potential, _) in enumerate(rows):
        region = (slot,) + tuple(slice(0, n) for n in potential.shape)
        tables[region] = potential
    var_ids = (
        np.array([row[2] for row in rows], dtype=np.intp)
        .T.reshape(ndim, len(rows))
    )
    table_ids = np.array([row[0] for row in rows], dtype=np.intp)
    valid = tuple(
        np.arange(shape[position])[None, :]
        < sizes_array[var_ids[position]][:, None]
        for position in range(ndim)
    )
    uniform = tuple(bool(mask.all()) for mask in valid)
    scatter = tuple(
        ScatterPlan.for_ids(var_ids[position]) for position in range(ndim)
    )
    # each table's rows form one contiguous run (stacking order); the runs
    # drive the engine's per-table convergence-delta reduction
    boundaries = np.flatnonzero(table_ids[1:] != table_ids[:-1]) + 1
    group_starts = np.concatenate(([0], boundaries))
    kind_blocks.setdefault(kind, []).append(len(blocks))
    blocks.append(
        FusedBlock(
            kind=kind,
            shape=shape,
            tables=tables,
            var_ids=var_ids,
            table_ids=table_ids,
            valid=valid,
            uniform=uniform,
            group_starts=group_starts,
            group_tables=table_ids[group_starts],
            scatter=scatter,
        )
    )


# ----------------------------------------------------------------------
# fused decode
# ----------------------------------------------------------------------
def _decode_bundle(
    bundle: FusedBundle,
    engine: FusedMaxProductBP,
    iterations: np.ndarray,
    converged: np.ndarray,
    tables: list[Table],
) -> list[TableAnnotation]:
    """Vectorised decoding of every table's annotation at once.

    Reproduces the per-table ``_decode`` exactly: chosen labels are the
    per-row argmax (ties to the earlier position), scores are the belief
    margin ``b[chosen] − max(b[others])`` (``b[chosen]`` after normalisation
    is exactly ``0.0``, so the margin is ``0.0 − second_max``; single-label
    variables score ``0.0``).
    """
    graph = bundle.graph
    n_vars = graph.n_variables
    if n_vars:
        beliefs = engine.belief_matrix()
        choices = np.argmax(beliefs, axis=1)
        scratch = beliefs.copy()
        scratch[np.arange(n_vars), choices] = -np.inf
        other_max = scratch.max(axis=1)
        margins = np.where(graph.sizes < 2, 0.0, 0.0 - other_max)
        unary_gather = graph.unaries[np.arange(n_vars), choices]
        scores = np.bincount(
            graph.var_table_ids, weights=unary_gather, minlength=graph.n_tables
        )
        for block in graph.blocks:
            index = (np.arange(block.n_factors),) + tuple(
                choices[block.var_ids[position]]
                for position in range(block.n_positions)
            )
            scores += np.bincount(
                block.table_ids, weights=block.tables[index],
                minlength=graph.n_tables,
            )
    else:
        choices = np.zeros(0, dtype=np.intp)
        margins = np.zeros(0, dtype=np.float64)
        scores = np.zeros(graph.n_tables, dtype=np.float64)

    annotations: list[TableAnnotation] = []
    for spec, table in zip(bundle.specs, tables):
        annotation = TableAnnotation(table_id=table.table_id)
        for row, column, var_id, labels in spec.cells:
            annotation.cells[(row, column)] = CellAnnotation(
                row=row,
                column=column,
                entity_id=labels[int(choices[var_id])],
                score=float(margins[var_id]),
            )
        for column, var_id, labels in spec.columns:
            annotation.columns[column] = ColumnAnnotation(
                column=column,
                type_id=labels[int(choices[var_id])],
                score=float(margins[var_id]),
            )
        for column in range(spec.n_columns):
            if column not in annotation.columns:
                annotation.columns[column] = ColumnAnnotation(
                    column=column, type_id=NA, score=0.0
                )
        for left, right, var_id, labels in spec.pairs:
            annotation.relations[(left, right)] = RelationAnnotation(
                left_column=left,
                right_column=right,
                label=labels[int(choices[var_id])],
                score=float(margins[var_id]),
            )
        annotation.diagnostics.update(
            {
                "method": "collective",
                "engine": "batched",
                "iterations": int(iterations[spec.table_index]),
                "converged": bool(converged[spec.table_index]),
                "log_score": float(scores[spec.table_index]),
                "n_variables": spec.n_variables,
                "n_factors": spec.n_factors,
            }
        )
        annotations.append(annotation)
    return annotations


# ----------------------------------------------------------------------
# the bucket entry point
# ----------------------------------------------------------------------
def annotate_fused_chunk(
    annotator: TableAnnotator,
    tables: list[Table],
    signature=None,
) -> list[TableAnnotation]:
    """Annotate one bucket chunk through the fused engine.

    Caller guarantees :func:`fused_eligible`.  The fused bundle is memoised
    in ``annotator.compiled_cache`` (when attached) under
    :func:`fused_cache_key`; a hit skips candidate generation and
    compilation, leaving one BP run plus the vectorised decode.  Per-table
    timings apportion the chunk's wall time equally (individual tables are
    not separable inside a fused run).
    """
    config = annotator.config
    start = time.perf_counter()
    cache = annotator.compiled_cache
    bundle = None
    key = None
    if cache is not None:
        key = fused_cache_key(tables, annotator.model, config, signature)
        bundle = cache.get(key)
    if bundle is None:
        proxy = _BucketPrefetchGenerator(annotator.candidate_generator, tables)
        problems = [
            build_problem(
                table,
                proxy,
                annotator.features,
                max_column_pairs=config.max_column_pairs,
            )
            for table in tables
        ]
        after_candidates = time.perf_counter()
        bundle = build_fused_bundle(
            problems, annotator.model, with_relations=config.with_relations
        )
        if cache is not None:
            cache.put(key, bundle)
    else:
        after_candidates = time.perf_counter()

    engine = FusedMaxProductBP(bundle.graph, damping=config.damping)
    iterations, converged = engine.run_paper_schedule(
        max_iterations=config.max_iterations, tolerance=config.tolerance
    )
    annotations = _decode_bundle(bundle, engine, iterations, converged, tables)
    end = time.perf_counter()

    share = len(tables) or 1
    for table, annotation in zip(tables, annotations):
        timing = AnnotationTiming(
            table_id=table.table_id,
            total_seconds=(end - start) / share,
            candidate_seconds=(after_candidates - start) / share,
            inference_seconds=(end - after_candidates) / share,
            n_rows=table.n_rows,
            n_columns=table.n_columns,
        )
        annotator.timings.append(timing)
        annotation.diagnostics["timing"] = timing
    return annotations
