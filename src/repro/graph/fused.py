"""Cross-table fused belief propagation: one super-graph per shape bucket.

:mod:`repro.graph.compiled` batches message passing *within* one table; on
corpora of many small tables the per-table engine still pays a fixed Python
cost per table (a few hundred tiny NumPy calls each).  This module merges the
factor graphs of a whole bucket of tables into one :class:`FusedGraph` whose
blocks span tables, so every Figure-11 half-step becomes a handful of large
tensor operations for the *entire bucket*.

Fusing is sound because per-table factor graphs are disconnected components:
no factor ever connects variables of two tables, so messages never flow
between tables and the fused trajectory is the per-table trajectory, merely
evaluated side by side.  Three details make it *bit*-exact, not just
approximately equal:

* **Row ordering.**  Within a fused block, each table's factors appear in the
  same relative order the per-table :class:`~repro.graph.compiled.FactorBlock`
  would hold them, and fused blocks of one kind are indexed by the per-table
  bucket *rank* (a table's first bucket of that kind feeds fused block 0, its
  second feeds block 1, …).  Scatter-adds into the running belief totals
  therefore replay each table's float-summation order exactly.
* **Head padding.**  Unlike per-table blocks, the head axis is padded too
  (tables with different head-domain sizes share a fused block).  Padded
  slots hold ``-inf`` log-potentials and ``-inf`` unaries; max-reductions
  ignore them, factor→variable messages are zeroed there before scattering,
  and the validity masks exclude them from convergence deltas — so padded
  slots never perturb a real slot's value.
* **Per-table freezing.**  Convergence is tracked per table: once a table's
  iteration delta drops below tolerance its rows stop updating (stored
  messages are kept, scatter contributions become exact ``+0.0``), which
  reproduces the per-table engine's early stopping — including the reported
  iteration counts — inside one fused run.

The per-table engines remain the reference; equivalence is enforced by
``tests/pipeline/test_fused.py``.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.graph.compiled import PAPER_SCHEDULE, ScatterPlan

#: reusable per-thread work tensors: the factor→variable update's summed
#: potentials are the largest arrays the engine touches, and allocating
#: them fresh every call costs page faults that rival the arithmetic
_SCRATCH = threading.local()


def _borrow(role: str, shape: tuple[int, ...]) -> np.ndarray:
    """A per-thread scratch array of ``shape``, reused across calls.

    Each role owns one growing buffer; callers must finish with a borrowed
    view before borrowing the same role again.  Every element is written by
    the ufunc ``out=`` before being read, so stale contents are harmless.
    """
    buffers = _SCRATCH.__dict__.setdefault("buffers", {})
    count = math.prod(shape)
    buffer = buffers.get(role)
    if buffer is None or buffer.size < count:
        buffers[role] = buffer = np.empty(count, dtype=np.float64)
    return buffer[:count].reshape(shape)


@dataclass
class FusedBlock:
    """All factors of one (kind, per-table bucket rank), across tables."""

    kind: str
    #: padded domain sizes per argument position (head included — see module
    #: docstring; per-table blocks never pad the head, fused blocks do)
    shape: tuple[int, ...]
    #: stacked log-potentials, shape ``(n_factors, *shape)``; padded slots
    #: hold ``-inf`` so they can never win a max-marginalisation
    tables: np.ndarray
    #: global variable ids per position, shape ``(n_positions, n_factors)``
    var_ids: np.ndarray
    #: owning table index per factor row, shape ``(n_factors,)``
    table_ids: np.ndarray
    #: per position: boolean (n_factors, shape[p]) mask of real domain slots
    valid: tuple[np.ndarray, ...]
    #: per position: True when every slot is real (no padding on that axis),
    #: letting updates skip the masked-subtract and zeroing passes
    uniform: tuple[bool, ...]
    #: first factor-row index of each table's contiguous run of rows
    group_starts: np.ndarray
    #: owning table index per run, aligned with ``group_starts``
    group_tables: np.ndarray
    #: per position: precompiled scatter of message rows into variable totals
    scatter: tuple[ScatterPlan, ...]

    @property
    def n_factors(self) -> int:
        return len(self.table_ids)

    @property
    def n_positions(self) -> int:
        return len(self.shape)


class FusedGraph:
    """The disconnected union of a bucket's factor graphs, block-stacked.

    Purely structural — construction (from per-table annotation problems)
    lives in :mod:`repro.core.fused`; this class only carries the arrays the
    fused engine runs on.  Instances are immutable and shareable across
    engines and threads (each engine owns its message state).
    """

    def __init__(
        self,
        sizes: np.ndarray,
        unaries: np.ndarray,
        var_table_ids: np.ndarray,
        blocks: list[FusedBlock],
        kind_blocks: dict[str, list[int]],
        n_tables: int,
    ) -> None:
        self.sizes = sizes
        self.unaries = unaries
        self.var_table_ids = var_table_ids
        self.blocks = blocks
        self.kind_blocks = kind_blocks
        self.n_tables = n_tables

    @property
    def n_variables(self) -> int:
        return len(self.sizes)

    @property
    def n_factors(self) -> int:
        return sum(block.n_factors for block in self.blocks)


class FusedMaxProductBP:
    """Max-product BP over a :class:`FusedGraph` with per-table freezing.

    The update rules are those of
    :class:`~repro.graph.compiled.BatchedMaxProductBP` verbatim — gather /
    exclusive-sum / max-reduce / normalise — applied to blocks that span
    tables.  The only additions are the per-table ``active`` mask (frozen
    tables keep their stored messages and contribute exact ``+0.0`` to the
    totals) and per-table delta accounting, which together reproduce the
    per-table engine's early stopping bit for bit.
    """

    def __init__(self, fused: FusedGraph, damping: float = 0.0) -> None:
        if not 0.0 <= damping < 1.0:
            raise ValueError(f"damping must be in [0, 1): {damping}")
        self.fused = fused
        self.damping = damping
        self._var_to_factor: list[list[np.ndarray]] = [
            [
                np.where(block.valid[position], 0.0, -np.inf)
                for position in range(block.n_positions)
            ]
            for block in fused.blocks
        ]
        self._factor_to_var: list[list[np.ndarray]] = [
            [
                np.zeros((block.n_factors, size), dtype=np.float64)
                for size in block.shape
            ]
            for block in fused.blocks
        ]
        self._totals = fused.unaries.copy()
        self._active = np.ones(fused.n_tables, dtype=bool)
        self._deltas = np.zeros(fused.n_tables, dtype=np.float64)
        self._belief_matrix: np.ndarray | None = None
        # per-block row selections and compacted scatter plans are pure
        # functions of the frozen set, so they are cached between freezes
        self._selection_cache: dict[
            int, tuple[slice | np.ndarray, int, tuple[np.ndarray, np.ndarray]] | None
        ] = {}
        self._plan_cache: dict[tuple[int, int], ScatterPlan] = {}

    # ------------------------------------------------------------------
    # block primitives
    # ------------------------------------------------------------------
    def _accumulate_delta(
        self,
        groups: tuple[np.ndarray, np.ndarray],
        message: np.ndarray,
        old: np.ndarray,
        valid: np.ndarray | None,
    ) -> None:
        """Fold one update's per-row deltas into the per-table maxima.

        ``groups`` is ``(group_starts, group_tables)`` — each table's
        contiguous run of rows — so one flat ``maximum.reduceat`` yields all
        per-table maxima at once (each table appears once, making the plain
        fancy assignment safe).  ``valid`` masks the subtraction where
        messages carry ``-inf`` at padded slots (``-inf - -inf`` would be
        NaN); pass ``None`` when both operands are finite everywhere
        (uniform blocks, or factor→variable messages already zeroed at
        padded slots) — the plain subtraction yields the identical delta.
        """
        if not message.size:
            return
        difference = _borrow("delta", message.shape)
        if valid is None:
            np.subtract(message, old, out=difference)
        else:
            difference.fill(0.0)
            np.subtract(message, old, out=difference, where=valid)
        np.abs(difference, out=difference)
        starts, tables = groups
        group_delta = np.maximum.reduceat(
            difference.reshape(-1), starts * message.shape[1]
        )
        self._deltas[tables] = np.maximum(self._deltas[tables], group_delta)

    def _accumulate_abs_delta(
        self,
        groups: tuple[np.ndarray, np.ndarray],
        difference: np.ndarray,
    ) -> None:
        """`_accumulate_delta` for a caller that already holds the diff.

        ``difference`` is left untouched (the caller reuses it for the
        totals scatter), so the absolute values land in separate scratch.
        """
        if not difference.size:
            return
        magnitude = _borrow("delta", difference.shape)
        np.abs(difference, out=magnitude)
        starts, tables = groups
        group_delta = np.maximum.reduceat(
            magnitude.reshape(-1), starts * difference.shape[1]
        )
        self._deltas[tables] = np.maximum(self._deltas[tables], group_delta)

    def _active_block_rows(
        self, block_id: int, block: FusedBlock
    ) -> tuple[slice | np.ndarray, int, tuple[np.ndarray, np.ndarray]] | None:
        """Row selector and delta groups for a block's still-active tables.

        Returns ``None`` when every owning table froze (the whole update is
        a no-op: the per-table engine performs no updates after its run
        ends).  Otherwise returns ``(rows, n_rows, groups)`` where ``rows``
        is ``slice(None)`` when all rows are active and an index array when
        frozen rows must be compacted out, and ``groups`` are the per-table
        row runs for delta accounting.  Skipping frozen rows entirely is
        exact: a frozen table's variables receive messages only from its own
        factors, so every value the skipped work would touch stays bitwise
        untouched — precisely the per-table engine's early stopping.

        The selection only depends on the frozen set, so it is computed once
        per block per freeze epoch (six half-steps reuse it each iteration).
        """
        if block_id in self._selection_cache:
            return self._selection_cache[block_id]
        active_rows = self._active[block.table_ids]
        selection: (
            tuple[slice | np.ndarray, int, tuple[np.ndarray, np.ndarray]] | None
        )
        if active_rows.all():
            selection = (
                slice(None),
                len(block.table_ids),
                (block.group_starts, block.group_tables),
            )
        elif not active_rows.any():
            selection = None
        else:
            rows = np.flatnonzero(active_rows)
            table_ids = block.table_ids[rows]
            # compacted rows keep each surviving table's run contiguous, so
            # the group boundaries are just the remaining table-id changes
            boundaries = np.flatnonzero(table_ids[1:] != table_ids[:-1]) + 1
            starts = np.concatenate(([0], boundaries))
            selection = rows, len(rows), (starts, table_ids[starts])
        self._selection_cache[block_id] = selection
        return selection

    def update_block_vars_to_factor(
        self, block_id: int, positions: Iterable[int]
    ) -> None:
        """Batched ``M(variable → factor)``, frozen tables compacted out."""
        block = self.fused.blocks[block_id]
        selection = self._active_block_rows(block_id, block)
        if selection is None:
            return
        rows, _n_rows, groups = selection
        all_active = isinstance(rows, slice)
        store = self._var_to_factor[block_id]
        for position in positions:
            size = block.shape[position]
            var_ids = block.var_ids[position][rows]
            # the gather is a fresh copy, so the arithmetic can run in place
            message = self._totals[var_ids, :size]
            np.subtract(
                message,
                self._factor_to_var[block_id][position][rows],
                out=message,
            )
            np.subtract(
                message, message.max(axis=1, keepdims=True), out=message
            )
            old = store[position] if all_active else store[position][rows]
            self._accumulate_delta(
                groups,
                message,
                old,
                None if block.uniform[position] else block.valid[position][rows],
            )
            if self.damping:
                message = self.damping * old + (1.0 - self.damping) * message
            if all_active:
                store[position] = message
            else:
                store[position][rows] = message
        self._belief_matrix = None

    def update_block_factor_to_vars(
        self, block_id: int, positions: Iterable[int]
    ) -> None:
        """Batched ``M(factor → variable)``, frozen tables compacted out."""
        block = self.fused.blocks[block_id]
        selection = self._active_block_rows(block_id, block)
        if selection is None:
            return
        rows, n_rows, groups = selection
        all_active = isinstance(rows, slice)
        store = self._factor_to_var[block_id]
        targets = list(positions)
        reshaped: list[np.ndarray] = []
        for position in range(block.n_positions):
            incoming = self._var_to_factor[block_id][position]
            shape = [n_rows] + [1] * block.n_positions
            shape[position + 1] = block.shape[position]
            reshaped.append(incoming[rows].reshape(shape))
        # the non-target incomings are common to every target's work tensor:
        # fold them into one shared base instead of re-adding per target
        base = block.tables[rows]
        for position in range(block.n_positions):
            if position not in targets:
                out = _borrow("f2v-base", base.shape)
                np.add(base, reshaped[position], out=out)
                base = out
        for target in targets:
            work = base
            for position in targets:
                if position != target:
                    out = _borrow("f2v-work", work.shape)
                    np.add(work, reshaped[position], out=out)
                    work = out
            reduce_axes = tuple(
                axis + 1 for axis in range(block.n_positions) if axis != target
            )
            # the reduction materialises a fresh array (work may be scratch,
            # so the no-reduction case must copy before the in-place steps)
            message = (
                work.max(axis=reduce_axes) if reduce_axes else work.copy()
            )
            np.subtract(
                message, message.max(axis=1, keepdims=True), out=message
            )
            if not block.uniform[target]:
                message = np.where(block.valid[target][rows], message, 0.0)
            old = store[target] if all_active else store[target][rows]
            if self.damping:
                # both operands are exactly 0.0 at invalid slots, so the
                # plain subtraction already yields the per-table masked delta
                self._accumulate_delta(groups, message, old, None)
                message = self.damping * old + (1.0 - self.damping) * message
                difference = message - old
            else:
                # undamped, the delta diff and the scatter diff coincide:
                # compute it once and fold |diff| into the per-table maxima
                difference = _borrow("f2v-diff", message.shape)
                np.subtract(message, old, out=difference)
                self._accumulate_abs_delta(groups, difference)
            var_ids = block.var_ids[target][rows]
            if all_active:
                plan = block.scatter[target]
            else:
                plan = self._plan_cache.get((block_id, target))
                if plan is None:
                    plan = ScatterPlan.for_ids(var_ids)
                    self._plan_cache[block_id, target] = plan
            # a variable's factor rows all live in one table, so compaction
            # drops whole scatter groups (whose deltas would be exact +0.0)
            # and keeps the surviving groups' float-summation order intact
            plan.add(
                self._totals[:, : block.shape[target]], difference, var_ids
            )
            if all_active:
                store[target] = message
            else:
                store[target][rows] = message
        self._belief_matrix = None

    # ------------------------------------------------------------------
    # schedule
    # ------------------------------------------------------------------
    def run_paper_schedule(
        self, max_iterations: int = 10, tolerance: float = 1e-5
    ) -> tuple[np.ndarray, np.ndarray]:
        """The Figure-11 block schedule with per-table early stopping.

        Returns ``(iterations, converged)`` arrays indexed by table: each
        table reports the iteration count and convergence flag the per-table
        ``run_paper_schedule`` would have reported for it alone.
        """
        n_tables = self.fused.n_tables
        iterations = np.zeros(n_tables, dtype=np.intp)
        converged = np.zeros(n_tables, dtype=bool)
        for iteration in range(1, max_iterations + 1):
            self._deltas.fill(0.0)
            for kind, var_positions, factor_positions in PAPER_SCHEDULE:
                for block_id in self.fused.kind_blocks.get(kind, ()):
                    self.update_block_vars_to_factor(block_id, var_positions)
                for block_id in self.fused.kind_blocks.get(kind, ()):
                    self.update_block_factor_to_vars(block_id, factor_positions)
            iterations[self._active] = iteration
            newly_frozen = self._active & (self._deltas < tolerance)
            if newly_frozen.any():
                converged |= newly_frozen
                self._active &= ~newly_frozen
                self._selection_cache.clear()
                self._plan_cache.clear()
                if not self._active.any():
                    break
        return iterations, converged

    # ------------------------------------------------------------------
    # beliefs
    # ------------------------------------------------------------------
    def belief_matrix(self) -> np.ndarray:
        """All variable beliefs, shape ``(n_variables, max_size)``.

        Rows are normalised to max 0; slots beyond a variable's domain are
        ``-inf``.  Cached until the next message update.
        """
        if self._belief_matrix is None:
            self._belief_matrix = self._totals - self._totals.max(
                axis=1, keepdims=True
            )
        return self._belief_matrix

    def belief(self, variable_id: int) -> np.ndarray:
        """Max-marginal log-belief of one variable (normalised to max 0)."""
        return self.belief_matrix()[variable_id, : self.fused.sizes[variable_id]]
