"""Factor graph container: variables with finite domains, log-space factors.

Potentials are stored as **log**-potentials throughout — products of the
paper's equation (1) become sums, which keeps 30-row tables numerically sane.
A factor's table is a dense :mod:`numpy` array with one axis per attached
variable, in the order given at construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

import numpy as np


@dataclass
class Variable:
    """A discrete variable node.

    Attributes:
        name: Graph-unique identifier (e.g. ``"t:2"`` or ``"e:3,1"``).
        domain: The label values; position in this sequence is the index used
            in all arrays.  Must be non-empty.
        unary: Log-potential per domain value (φ1/φ2 of the paper live here).
        kind: Free-form tag ("type" / "entity" / "relation") used by custom
            schedules to group nodes.
    """

    name: str
    domain: tuple[Hashable, ...]
    unary: np.ndarray
    kind: str = ""

    def __post_init__(self) -> None:
        self.domain = tuple(self.domain)
        if not self.domain:
            raise ValueError(f"variable {self.name!r} has an empty domain")
        self.unary = np.asarray(self.unary, dtype=float)
        if self.unary.shape != (len(self.domain),):
            raise ValueError(
                f"variable {self.name!r}: unary shape {self.unary.shape} does "
                f"not match domain size {len(self.domain)}"
            )

    @property
    def size(self) -> int:
        return len(self.domain)

    def index_of(self, label: Hashable) -> int:
        return self.domain.index(label)


@dataclass
class Factor:
    """A factor node coupling two or more variables.

    Attributes:
        name: Graph-unique identifier (e.g. ``"phi3:c2"``).
        variables: Names of attached variables; axis order of ``table``.
        table: Dense log-potential array, shape = variable domain sizes.
        kind: Tag used by custom schedules ("phi3" / "phi4" / "phi5").
    """

    name: str
    variables: tuple[str, ...]
    table: np.ndarray
    kind: str = ""

    def __post_init__(self) -> None:
        self.variables = tuple(self.variables)
        if len(self.variables) < 2:
            raise ValueError(
                f"factor {self.name!r} must couple at least two variables; "
                "fold unary terms into Variable.unary instead"
            )
        self.table = np.asarray(self.table, dtype=float)
        if self.table.ndim != len(self.variables):
            raise ValueError(
                f"factor {self.name!r}: table rank {self.table.ndim} does not "
                f"match {len(self.variables)} variables"
            )

    def axis_of(self, variable_name: str) -> int:
        return self.variables.index(variable_name)


@dataclass
class FactorGraph:
    """A bipartite graph of :class:`Variable` and :class:`Factor` nodes."""

    variables: dict[str, Variable] = field(default_factory=dict)
    factors: dict[str, Factor] = field(default_factory=dict)
    _var_factors: dict[str, list[str]] = field(default_factory=dict)

    def add_variable(
        self,
        name: str,
        domain: Sequence[Hashable],
        unary: np.ndarray | Sequence[float],
        kind: str = "",
    ) -> Variable:
        if name in self.variables:
            raise ValueError(f"duplicate variable name: {name!r}")
        variable = Variable(name=name, domain=tuple(domain), unary=np.asarray(unary), kind=kind)
        self.variables[name] = variable
        self._var_factors[name] = []
        return variable

    def add_factor(
        self,
        name: str,
        variables: Sequence[str],
        table: np.ndarray,
        kind: str = "",
    ) -> Factor:
        if name in self.factors:
            raise ValueError(f"duplicate factor name: {name!r}")
        for variable_name in variables:
            if variable_name not in self.variables:
                raise KeyError(f"factor {name!r} references unknown variable {variable_name!r}")
        factor = Factor(name=name, variables=tuple(variables), table=np.asarray(table), kind=kind)
        expected_shape = tuple(self.variables[v].size for v in factor.variables)
        if factor.table.shape != expected_shape:
            raise ValueError(
                f"factor {name!r}: table shape {factor.table.shape} does not "
                f"match variable domains {expected_shape}"
            )
        self.factors[name] = factor
        for variable_name in variables:
            self._var_factors[variable_name].append(name)
        return factor

    def factors_of(self, variable_name: str) -> list[str]:
        """Names of factors attached to a variable (insertion order)."""
        return list(self._var_factors[variable_name])

    def score(self, assignment: dict[str, Hashable]) -> float:
        """Total log-score of a full assignment (the log of objective (1))."""
        total = 0.0
        for name, variable in self.variables.items():
            total += float(variable.unary[variable.index_of(assignment[name])])
        for factor in self.factors.values():
            indices = tuple(
                self.variables[v].index_of(assignment[v]) for v in factor.variables
            )
            total += float(factor.table[indices])
        return total
