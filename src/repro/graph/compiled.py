"""Compiled, batched belief propagation over stacked factor tensors.

The scalar engine in :mod:`repro.graph.bp` walks factors one edge at a time:
every message update is a dict lookup plus a handful of tiny NumPy ops, so
per-table inference cost grows with Python edge count (φ5 factors alone grow
as O(rows·columns²)).  This module trades that loop for block compute:

* :class:`CompiledFactorGraph` groups a graph's factors by *kind*, arity and
  head-domain size into :class:`FactorBlock` buckets whose log-potential
  tables are stacked into one contiguous ``(n_factors, *shape)`` tensor —
  all φ3 grids of a column land in one 3-D tensor, all φ5 row factors of a
  column pair (and of every same-headed pair) in one 4-D tensor, φ4 tables
  in another.  Ragged tail domains (per-row candidate counts) are padded to
  the bucket maximum with ``-inf`` log-potentials, so padded labels can never
  win a max-marginalisation; per-position validity masks keep message deltas
  and stored messages clean.
* :class:`BatchedMaxProductBP` replays the scalar engine's update rules one
  *block* at a time: each Figure-11 half-step becomes a gather, a broadcast
  add and a max-reduction over a stacked tensor instead of a Python loop over
  edges.  Within every half-step of the paper schedule (and of flooding) the
  scalar updates are mutually independent — each reads only messages written
  in *earlier* half-steps — so the batched engine computes the same message
  trajectory (up to float summation order) and the same MAP assignment.

Variable→factor messages use the exclusive-sum trick (``running total −
incoming``), with the running totals maintained incrementally through
precompiled scatter plans.  The trick assumes **finite** log-potentials;
encode hard constraints as large negative values rather than ``-inf`` when
using this engine.  The scalar engine remains the reference implementation;
equivalence is enforced by ``tests/graph/test_compiled.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable

import numpy as np
from scipy.special import logsumexp

from repro.graph.bp import BPResult
from repro.graph.factor_graph import FactorGraph


@dataclass
class ScatterPlan:
    """Precompiled row-scatter: add per-factor message rows into variables.

    Buckets the ``(n_factors,)`` variable ids of one block position at
    compile time so every runtime scatter is a pure NumPy call even when the
    same variable receives several rows (e.g. one relation variable fed by
    every φ5 row factor of its column pair).
    """

    #: distinct destination variable ids, ascending
    unique_ids: np.ndarray
    #: factor slots reordered so equal destinations are contiguous
    order: np.ndarray
    #: segment starts into ``order``, one per unique id
    starts: np.ndarray
    #: True when every destination is distinct (plain fancy-index add works)
    all_unique: bool

    @classmethod
    def for_ids(cls, ids: np.ndarray) -> "ScatterPlan":
        order = np.argsort(ids, kind="stable")
        ordered = ids[order]
        boundaries = np.ones(len(ordered), dtype=bool)
        boundaries[1:] = ordered[1:] != ordered[:-1]
        starts = np.flatnonzero(boundaries)
        unique_ids = ordered[starts]
        return cls(
            unique_ids=unique_ids,
            order=order,
            starts=starts,
            all_unique=len(unique_ids) == len(ids),
        )

    def add(self, destination: np.ndarray, rows: np.ndarray, ids: np.ndarray) -> None:
        """``destination[ids] += rows`` with correct duplicate handling."""
        if self.all_unique:
            destination[ids] += rows
        else:
            destination[self.unique_ids] += np.add.reduceat(
                rows[self.order], self.starts, axis=0
            )


@dataclass
class FactorBlock:
    """All factors of one ``(kind, arity, head size)`` bucket, stacked."""

    kind: str
    #: padded domain sizes per argument position; the head (position 0) is
    #: never padded, tail positions are padded to the bucket maximum
    shape: tuple[int, ...]
    #: factor names, graph insertion order within the bucket
    names: tuple[str, ...]
    #: stacked log-potentials, shape ``(n_factors, *shape)``; padded slots
    #: hold ``-inf`` so they can never win a max-marginalisation
    tables: np.ndarray
    #: global variable ids per position, shape ``(n_positions, n_factors)``
    var_ids: np.ndarray
    #: per position: boolean (n_factors, shape[p]) mask of real domain slots
    valid: tuple[np.ndarray, ...]
    #: per position: precompiled scatter of message rows into variable totals
    scatter: tuple[ScatterPlan, ...]

    @property
    def n_factors(self) -> int:
        return len(self.names)

    @property
    def n_positions(self) -> int:
        return len(self.shape)


class CompiledFactorGraph:
    """A :class:`FactorGraph` reorganised for block-parallel message passing.

    Compilation is pure restructuring: variables get integer ids and a
    ``-inf``-padded unary matrix, factors get bucketed into
    :class:`FactorBlock` tensors.  The source graph is kept (``self.graph``)
    for scoring and decoding; compiled instances are immutable and safe to
    reuse across engines and threads (each engine owns its message state).
    """

    def __init__(self, graph: FactorGraph) -> None:
        self.graph = graph
        self.var_names: tuple[str, ...] = tuple(graph.variables)
        self.var_index: dict[str, int] = {
            name: index for index, name in enumerate(self.var_names)
        }
        self.sizes = np.array(
            [graph.variables[name].size for name in self.var_names], dtype=np.intp
        )
        self.max_size = int(self.sizes.max()) if self.sizes.size else 1
        self.unaries = np.full(
            (len(self.var_names), self.max_size), -np.inf, dtype=np.float64
        )
        for index, name in enumerate(self.var_names):
            variable = graph.variables[name]
            self.unaries[index, : variable.size] = variable.unary

        # Bucket by (kind, arity, head-domain size): φ3 factors of all
        # same-sized columns share one block, φ5 row factors of all
        # same-sized pairs share another; ragged tail axes get -inf padding.
        buckets: dict[tuple[str, int, int], list] = {}
        for factor in graph.factors.values():
            key = (factor.kind, factor.table.ndim, factor.table.shape[0])
            buckets.setdefault(key, []).append(factor)

        self.blocks: list[FactorBlock] = []
        #: block ids per factor kind, in bucket creation order
        self.kind_blocks: dict[str, list[int]] = {}
        #: (variable name, factor name) -> (block id, position, slot)
        self._edge_slots: dict[tuple[str, str], tuple[int, int, int]] = {}
        for (kind, ndim, head_size), factors in buckets.items():
            shape = tuple(
                max(factor.table.shape[axis] for factor in factors)
                if axis
                else head_size
                for axis in range(ndim)
            )
            tables = np.full((len(factors), *shape), -np.inf, dtype=np.float64)
            for slot, factor in enumerate(factors):
                region = (slot,) + tuple(slice(0, n) for n in factor.table.shape)
                tables[region] = factor.table
            var_ids = np.array(
                [
                    [self.var_index[name] for name in factor.variables]
                    for factor in factors
                ],
                dtype=np.intp,
            ).T.reshape(ndim, len(factors))
            valid = tuple(
                np.arange(shape[position])[None, :]
                < self.sizes[var_ids[position]][:, None]
                for position in range(ndim)
            )
            scatter = tuple(
                ScatterPlan.for_ids(var_ids[position]) for position in range(ndim)
            )
            block_id = len(self.blocks)
            self.blocks.append(
                FactorBlock(
                    kind=kind,
                    shape=shape,
                    names=tuple(factor.name for factor in factors),
                    tables=tables,
                    var_ids=var_ids,
                    valid=valid,
                    scatter=scatter,
                )
            )
            self.kind_blocks.setdefault(kind, []).append(block_id)
            for slot, factor in enumerate(factors):
                for position, name in enumerate(factor.variables):
                    self._edge_slots[(name, factor.name)] = (block_id, position, slot)

    @classmethod
    def from_graph(cls, graph: FactorGraph) -> "CompiledFactorGraph":
        return cls(graph)

    @property
    def n_factors(self) -> int:
        return sum(block.n_factors for block in self.blocks)

    def edge_slot(self, variable_name: str, factor_name: str) -> tuple[int, int, int]:
        """``(block id, position, slot)`` of one variable–factor edge."""
        return self._edge_slots[(variable_name, factor_name)]


#: the Figure-11 block schedule as (factor kind, var→factor positions,
#: factor→var positions) half-steps — position 0 is the type/relation head,
#: positions 1+ are the tail variables (see build_factor_graph)
PAPER_SCHEDULE: tuple[tuple[str, tuple[int, ...], tuple[int, ...]], ...] = (
    ("phi3", (1,), (0,)),
    ("phi3", (0,), (1,)),
    ("phi5", (1, 2), (0,)),
    ("phi5", (0,), (1, 2)),
    ("phi4", (1, 2), (0,)),
    ("phi4", (0,), (1, 2)),
)


class BatchedMaxProductBP:
    """Max-product BP whose updates run one :class:`FactorBlock` at a time.

    Mirrors the observable API of :class:`~repro.graph.bp.MaxProductBP`
    (``belief`` / ``map_assignment`` / ``run_flooding`` plus message
    accessors) and its semantics: messages are normalised to max 0 after
    every update, damping interpolates against the stored message, and the
    reported delta is the **undamped** message change (see
    ``MaxProductBP._store``).

    Message state per (block, position) is an ``(n_factors, size)`` array;
    variable→factor messages hold ``-inf`` at padded slots, factor→variable
    messages hold ``0`` there so the running belief totals stay finite
    arithmetic away from the padding.
    """

    def __init__(self, compiled: CompiledFactorGraph, damping: float = 0.0) -> None:
        if not 0.0 <= damping < 1.0:
            raise ValueError(f"damping must be in [0, 1): {damping}")
        self.compiled = compiled
        self.graph = compiled.graph
        self.damping = damping
        self._var_to_factor: list[list[np.ndarray]] = [
            [
                np.where(block.valid[position], 0.0, -np.inf)
                for position in range(block.n_positions)
            ]
            for block in compiled.blocks
        ]
        self._factor_to_var: list[list[np.ndarray]] = [
            [
                np.zeros((block.n_factors, size), dtype=np.float64)
                for size in block.shape
            ]
            for block in compiled.blocks
        ]
        #: unary + all incoming factor→variable messages, maintained
        #: incrementally on every factor→variable store
        self._totals = compiled.unaries.copy()
        self._belief_matrix: np.ndarray | None = None

    # ------------------------------------------------------------------
    # message access (testing / introspection)
    # ------------------------------------------------------------------
    def message_var_to_factor(self, variable_name: str, factor_name: str) -> np.ndarray:
        block_id, position, slot = self.compiled.edge_slot(variable_name, factor_name)
        size = self.compiled.sizes[self.compiled.var_index[variable_name]]
        return self._var_to_factor[block_id][position][slot, :size]

    def message_factor_to_var(self, factor_name: str, variable_name: str) -> np.ndarray:
        block_id, position, slot = self.compiled.edge_slot(variable_name, factor_name)
        size = self.compiled.sizes[self.compiled.var_index[variable_name]]
        return self._factor_to_var[block_id][position][slot, :size]

    # ------------------------------------------------------------------
    # block primitives
    # ------------------------------------------------------------------
    def update_block_vars_to_factor(
        self, block_id: int, positions: Iterable[int]
    ) -> float:
        """Batched ``M(variable → factor)`` for whole positions of a block.

        The exclusive sum is ``totals[variable] − M(factor → variable)``
        with the running totals gathered per factor slot.
        """
        block = self.compiled.blocks[block_id]
        delta = 0.0
        for position in positions:
            size = block.shape[position]
            gathered = self._totals[block.var_ids[position], :size]
            message = gathered - self._factor_to_var[block_id][position]
            message = message - message.max(axis=1, keepdims=True)
            store = self._var_to_factor[block_id]
            old = store[position]
            delta = max(
                delta,
                _masked_delta(message, old, block.valid[position]),
            )
            if self.damping:
                message = self.damping * old + (1.0 - self.damping) * message
            store[position] = message
        self._belief_matrix = None
        return delta

    def update_block_factor_to_vars(
        self, block_id: int, positions: Iterable[int]
    ) -> float:
        """Batched ``M(factor → variable)`` for whole positions of a block."""
        block = self.compiled.blocks[block_id]
        delta = 0.0
        for target in positions:
            work = block.tables
            for position in range(block.n_positions):
                if position == target:
                    continue
                incoming = self._var_to_factor[block_id][position]
                shape = [block.n_factors] + [1] * block.n_positions
                shape[position + 1] = block.shape[position]
                work = work + incoming.reshape(shape)
            reduce_axes = tuple(
                axis + 1 for axis in range(block.n_positions) if axis != target
            )
            message = self._marginalise(work, reduce_axes) if reduce_axes else work
            message = message - message.max(axis=1, keepdims=True)
            valid = block.valid[target]
            store = self._factor_to_var[block_id]
            old = store[target]
            delta = max(delta, _masked_delta(message, old, valid))
            if self.damping:
                message = self.damping * old + (1.0 - self.damping) * message
            message = np.where(valid, message, 0.0)
            block.scatter[target].add(
                self._totals[:, : block.shape[target]],
                message - old,
                block.var_ids[target],
            )
            store[target] = message
        self._belief_matrix = None
        return delta

    def _marginalise(self, work: np.ndarray, reduce_axes: tuple[int, ...]) -> np.ndarray:
        """Max-marginalisation; the sum-product subclass swaps in LSE."""
        return work.max(axis=reduce_axes)

    # ------------------------------------------------------------------
    # beliefs and decoding
    # ------------------------------------------------------------------
    def belief_matrix(self) -> np.ndarray:
        """All variable beliefs at once, shape ``(n_variables, max_size)``.

        Rows are normalised to max 0; slots beyond a variable's domain are
        ``-inf``.  Cached until the next message update.
        """
        if self._belief_matrix is None:
            self._belief_matrix = self._totals - self._totals.max(
                axis=1, keepdims=True
            )
        return self._belief_matrix

    def belief(self, variable_name: str) -> np.ndarray:
        """Max-marginal log-belief of one variable (normalised to max 0)."""
        index = self.compiled.var_index[variable_name]
        return self.belief_matrix()[index, : self.compiled.sizes[index]]

    def map_assignment(self) -> dict[str, Hashable]:
        """Per-variable argmax decoding, ties broken to the earlier position."""
        choices = np.argmax(self.belief_matrix(), axis=1)
        return {
            name: self.graph.variables[name].domain[int(choices[index])]
            for index, name in enumerate(self.compiled.var_names)
        }

    # ------------------------------------------------------------------
    # schedules
    # ------------------------------------------------------------------
    def run_paper_schedule(
        self, max_iterations: int = 10, tolerance: float = 1e-5
    ) -> tuple[int, bool]:
        """The Figure-11 block schedule, one batched half-step at a time.

        Executes the same update sequence as the scalar loop in
        :func:`repro.core.inference.annotate_collective`: within each
        half-step every scalar update reads only messages from earlier
        half-steps, so batching them is exact up to float summation order.
        Returns ``(iterations, converged)``.
        """
        iterations = 0
        converged = False
        for iterations in range(1, max_iterations + 1):  # noqa: B007 - read after loop
            delta = 0.0
            for kind, var_positions, factor_positions in PAPER_SCHEDULE:
                for block_id in self.compiled.kind_blocks.get(kind, ()):
                    delta = max(
                        delta,
                        self.update_block_vars_to_factor(block_id, var_positions),
                    )
                for block_id in self.compiled.kind_blocks.get(kind, ()):
                    delta = max(
                        delta,
                        self.update_block_factor_to_vars(block_id, factor_positions),
                    )
            if delta < tolerance:
                converged = True
                break
        return iterations, converged

    def run_flooding(
        self, max_iterations: int = 20, tolerance: float = 1e-6
    ) -> BPResult:
        """Synchronous flooding, batched: all var→factor, then all factor→var."""
        iterations = 0
        converged = False
        all_positions = [range(block.n_positions) for block in self.compiled.blocks]
        for iterations in range(1, max_iterations + 1):  # noqa: B007 - read after loop
            delta = 0.0
            for block_id, positions in enumerate(all_positions):
                delta = max(
                    delta, self.update_block_vars_to_factor(block_id, positions)
                )
            for block_id, positions in enumerate(all_positions):
                delta = max(
                    delta, self.update_block_factor_to_vars(block_id, positions)
                )
            if delta < tolerance:
                converged = True
                break
        assignment = self.map_assignment()
        beliefs = self.belief_matrix()
        return BPResult(
            assignment=assignment,
            iterations=iterations,
            converged=converged,
            log_score=self.graph.score(assignment),
            max_beliefs={
                name: float(beliefs[index, : self.compiled.sizes[index]].max())
                for index, name in enumerate(self.compiled.var_names)
            },
        )


def _masked_delta(message: np.ndarray, old: np.ndarray, valid: np.ndarray) -> float:
    """Max abs change over real domain slots (padding excluded).

    Padded slots are skipped *before* subtracting — both sides hold ``-inf``
    there in variable→factor stores, and ``-inf - -inf`` is NaN.
    """
    if not message.size:
        return 0.0
    difference = np.zeros_like(message)
    np.subtract(message, old, out=difference, where=valid)
    return float(np.max(np.abs(difference)))


class BatchedSumProductBP(BatchedMaxProductBP):
    """Sum-product variant: block marginalisation by log-sum-exp.

    The batched counterpart of :class:`~repro.graph.bp.SumProductBP` —
    identical message plumbing, beliefs are (log) posterior marginals.
    """

    def _marginalise(self, work, reduce_axes):
        return logsumexp(work, axis=reduce_axes)

    def marginals(self, variable_name: str) -> np.ndarray:
        """Normalised posterior marginal of one variable (probabilities)."""
        belief = self.belief(variable_name)
        belief = belief - logsumexp(belief)
        return np.exp(belief)
