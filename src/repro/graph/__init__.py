"""Generic factor-graph representation and max-product belief propagation.

The paper's collective inference (Section 4.4, Appendix D) is message passing
on a factor graph whose variable nodes are the type (``tc``), entity
(``erc``) and relation (``bcc'``) variables, and whose factor nodes are the
coupling potentials φ3, φ4, φ5 (φ1 and φ2 are unary and folded into the
variables).  This package provides the graph container
(:mod:`repro.graph.factor_graph`), a log-space scalar engine — the reference
implementation — with both a generic flooding schedule and support for the
paper's custom schedule (:mod:`repro.graph.bp`), and a compiled, batched
engine that runs the same schedules as vectorised block updates over stacked
factor tensors (:mod:`repro.graph.compiled`).
"""

from repro.graph.bp import BPResult, MaxProductBP, SumProductBP
from repro.graph.compiled import (
    BatchedMaxProductBP,
    BatchedSumProductBP,
    CompiledFactorGraph,
    FactorBlock,
)
from repro.graph.factor_graph import Factor, FactorGraph, Variable

__all__ = [
    "BPResult",
    "BatchedMaxProductBP",
    "BatchedSumProductBP",
    "CompiledFactorGraph",
    "Factor",
    "FactorBlock",
    "FactorGraph",
    "MaxProductBP",
    "SumProductBP",
    "Variable",
]
