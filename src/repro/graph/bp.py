"""Log-space belief propagation: max-product MAP and sum-product marginals.

Implements the message equations of the paper's Appendix B/D in log space:

* variable → factor:  ``M(i→f) = unary_i + Σ_{g≠f} M(g→i)``
* factor → variable:  ``M(f→i) = max_{x_{-i}} [ table + Σ_{j≠i} M(j→f) ]``

Messages are normalised (max subtracted) after every update so repeated
iterations cannot drift.  The engine exposes the individual update primitives
so the annotator can drive the paper's exact Figure-11 schedule, plus a
generic flooding schedule (:meth:`MaxProductBP.run_flooding`) with damping and
convergence detection for arbitrary graphs.

:class:`SumProductBP` swaps the max-marginalisation for log-sum-exp, turning
beliefs into (log) posterior marginals — exact on trees, the usual loopy
approximation otherwise.  The paper decodes with max-product; marginals are
an extension used for calibrated annotation confidences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

import numpy as np
from scipy.special import logsumexp

from repro.graph.factor_graph import FactorGraph


@dataclass
class BPResult:
    """Outcome of an inference run."""

    assignment: dict[str, Hashable]
    iterations: int
    converged: bool
    log_score: float
    max_beliefs: dict[str, float] = field(default_factory=dict)


class MaxProductBP:
    """Max-product BP over a :class:`~repro.graph.factor_graph.FactorGraph`."""

    def __init__(self, graph: FactorGraph, damping: float = 0.0) -> None:
        if not 0.0 <= damping < 1.0:
            raise ValueError(f"damping must be in [0, 1): {damping}")
        self.graph = graph
        self.damping = damping
        # messages keyed by (variable, factor) pairs, stored as log arrays
        self._var_to_factor: dict[tuple[str, str], np.ndarray] = {}
        self._factor_to_var: dict[tuple[str, str], np.ndarray] = {}
        for factor in graph.factors.values():
            for variable_name in factor.variables:
                size = graph.variables[variable_name].size
                self._var_to_factor[(variable_name, factor.name)] = np.zeros(
                    size, dtype=np.float64
                )
                self._factor_to_var[(factor.name, variable_name)] = np.zeros(
                    size, dtype=np.float64
                )

    # ------------------------------------------------------------------
    # message primitives
    # ------------------------------------------------------------------
    def update_var_to_factor(self, variable_name: str, factor_name: str) -> float:
        """Recompute ``M(variable → factor)``; returns the max abs change."""
        variable = self.graph.variables[variable_name]
        message = variable.unary.copy()
        for other_factor in self.graph.factors_of(variable_name):
            if other_factor == factor_name:
                continue
            message = message + self._factor_to_var[(other_factor, variable_name)]
        message = message - message.max()
        key = (variable_name, factor_name)
        return self._store(self._var_to_factor, key, message)

    def update_factor_to_var(self, factor_name: str, variable_name: str) -> float:
        """Recompute ``M(factor → variable)``; returns the max abs change."""
        factor = self.graph.factors[factor_name]
        work = factor.table
        target_axis = factor.axis_of(variable_name)
        for axis, other_name in enumerate(factor.variables):
            if other_name == variable_name:
                continue
            incoming = self._var_to_factor[(other_name, factor.name)]
            shape = [1] * work.ndim
            shape[axis] = incoming.shape[0]
            work = work + incoming.reshape(shape)
        reduce_axes = tuple(
            axis for axis in range(work.ndim) if axis != target_axis
        )
        message = self._marginalise(work, reduce_axes) if reduce_axes else work
        message = message - message.max()
        key = (factor_name, variable_name)
        return self._store(self._factor_to_var, key, message)

    def _marginalise(self, work: np.ndarray, reduce_axes: tuple[int, ...]) -> np.ndarray:
        """Max-marginalisation; :class:`SumProductBP` overrides with LSE."""
        return work.max(axis=reduce_axes)

    def _store(
        self,
        table: dict[tuple[str, str], np.ndarray],
        key: tuple[str, str],
        message: np.ndarray,
    ) -> float:
        """Store a freshly computed message; returns the **undamped** delta.

        The convergence delta is measured against the raw recomputed message,
        *before* damping is applied.  Measuring after damping would shrink
        every reported change by ``(1 - damping)`` — at damping 0.9 a message
        still moving by 10×tolerance per step would report converged.
        """
        old = table[key]
        delta = float(np.max(np.abs(message - old))) if old.size else 0.0
        if self.damping:
            message = self.damping * old + (1.0 - self.damping) * message
        table[key] = message
        return delta

    # ------------------------------------------------------------------
    # beliefs and decoding
    # ------------------------------------------------------------------
    def belief(self, variable_name: str) -> np.ndarray:
        """Max-marginal log-belief of a variable (normalised to max 0)."""
        variable = self.graph.variables[variable_name]
        belief = variable.unary.copy()
        for factor_name in self.graph.factors_of(variable_name):
            belief = belief + self._factor_to_var[(factor_name, variable_name)]
        return belief - belief.max()

    def map_assignment(self) -> dict[str, Hashable]:
        """Per-variable argmax decoding with deterministic tie-breaking.

        Ties are broken toward the *earlier* domain position, which callers
        arrange to be the higher-prior label (the annotator puts ``na`` at
        position 0, so zero-evidence ties resolve to na).
        """
        assignment: dict[str, Hashable] = {}
        for name, variable in self.graph.variables.items():
            belief = self.belief(name)
            assignment[name] = variable.domain[int(np.argmax(belief))]
        return assignment

    # ------------------------------------------------------------------
    # generic schedule
    # ------------------------------------------------------------------
    def run_flooding(
        self, max_iterations: int = 20, tolerance: float = 1e-6
    ) -> BPResult:
        """Synchronous flooding schedule until message convergence."""
        iterations = 0
        converged = False
        for iterations in range(1, max_iterations + 1):  # noqa: B007 - read after loop
            delta = 0.0
            for factor in self.graph.factors.values():
                for variable_name in factor.variables:
                    delta = max(
                        delta, self.update_var_to_factor(variable_name, factor.name)
                    )
            for factor in self.graph.factors.values():
                for variable_name in factor.variables:
                    delta = max(
                        delta, self.update_factor_to_var(factor.name, variable_name)
                    )
            if delta < tolerance:
                converged = True
                break
        assignment = self.map_assignment()
        return BPResult(
            assignment=assignment,
            iterations=iterations,
            converged=converged,
            log_score=self.graph.score(assignment),
            max_beliefs={
                name: float(self.belief(name).max())
                for name in self.graph.variables
            },
        )


class SumProductBP(MaxProductBP):
    """Sum-product BP: beliefs are (log) posterior marginals.

    Identical message plumbing to :class:`MaxProductBP`, with factor-side
    marginalisation done by log-sum-exp.  Exact on tree-structured graphs;
    on loopy graphs it computes the standard Bethe approximation.  Use
    :meth:`marginals` for normalised per-variable distributions.
    """

    def _marginalise(self, work, reduce_axes):
        return logsumexp(work, axis=reduce_axes)

    def marginals(self, variable_name: str) -> np.ndarray:
        """Normalised posterior marginal of one variable (probabilities)."""
        belief = self.belief(variable_name)
        belief = belief - logsumexp(belief)
        return np.exp(belief)
