"""Inverted index with TF-IDF scoring — the offline Lucene substitute.

Two callers:

* the **lemma index** used for candidate entity retrieval ("use a text index
  to collect candidate entities based on overlap between cell and lemma
  tokens", paper Section 4.3/Figure 2), and
* the **table index** of the search application (documents are table cells /
  contexts).

Documents are short strings; postings store raw term counts.  Scoring is the
usual ``sum_t tf_q(t) * tf_d(t) * idf(t)^2`` cosine numerator with document
length normalisation, which is all the ranking fidelity these callers need.

Retrieval is the system's hottest path (the paper's Figure 7 attributes ~80%
of annotation time to lemma-index probing), so :meth:`InvertedIndex.freeze`
precomputes everything a query needs into flat arrays: per-token IDF values
(previously recomputed per token per query), per-token posting arrays
(document ids + IDF²-weighted counts) and the document norm vector.  A search
is then one vectorised accumulate per query token.

The frozen arrays are also the index's *serialization*:
:meth:`InvertedIndex.to_state` exports them as flat concatenated vectors
(tokens sorted, per-token slices described by an offsets array) and
:meth:`InvertedIndex.from_state` rebuilds a frozen index directly from those
arrays — no re-tokenisation, no IDF recomputation, no norm pass.  Artifact
bundles (:mod:`repro.serve.bundle`) persist exactly this state, which is why
a served index starts warm instead of replaying ``freeze()``.
"""

from __future__ import annotations

import heapq
import math
from collections import Counter
from dataclasses import dataclass
from typing import Hashable, Iterable

import numpy as np

from repro.text.tokenize import tokenize


@dataclass(frozen=True)
class IndexHit:
    """One retrieval result: a document key and its match score."""

    key: Hashable
    score: float


class InvertedIndex:
    """A tiny in-memory inverted index over short text documents.

    Keys are arbitrary hashable identifiers; one key may be indexed under
    several documents (e.g. an entity with several lemmas) — scores then take
    the max over that key's documents.
    """

    def __init__(self) -> None:
        self._postings: dict[str, dict[int, int]] = {}
        self._doc_key: list[Hashable] = []
        self._frozen = False
        # filled in freeze()
        self._idf: dict[str, float] = {}
        self._doc_norm: np.ndarray = np.zeros(0)
        self._token_arrays: dict[str, tuple[np.ndarray, np.ndarray]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(self, key: Hashable, text: str) -> None:
        """Index one document ``text`` under ``key``."""
        if self._frozen:
            raise RuntimeError("index is frozen; create a new index to add more")
        counts = Counter(tokenize(text))
        if not counts:
            return
        doc_id = len(self._doc_key)
        self._doc_key.append(key)
        for token, count in counts.items():
            self._postings.setdefault(token, {})[doc_id] = count

    def add_many(self, items: Iterable[tuple[Hashable, str]]) -> None:
        for key, text in items:
            self.add(key, text)

    def freeze(self) -> None:
        """Precompute IDF values, posting arrays and document norms (idempotent).

        After freezing, :meth:`search` touches only flat arrays: per token a
        ``(doc_ids, idf²·count)`` pair, plus one norm per document.
        """
        if self._frozen:
            return
        n_docs = len(self._doc_key)
        self._idf = {
            token: 1.0 + math.log((n_docs + 1) / (len(postings) + 1))
            for token, postings in self._postings.items()
        }
        norms_squared = np.zeros(n_docs)
        for token, postings in self._postings.items():
            token_idf = self._idf[token]
            doc_ids = np.fromiter(postings.keys(), dtype=np.intp, count=len(postings))
            counts = np.fromiter(
                postings.values(), dtype=np.float64, count=len(postings)
            )
            norms_squared[doc_ids] += (counts * token_idf) ** 2
            self._token_arrays[token] = (doc_ids, counts * token_idf * token_idf)
        norms = np.sqrt(norms_squared)
        norms[norms == 0.0] = 1.0
        self._doc_norm = norms
        self._frozen = True

    # ------------------------------------------------------------------
    # frozen-state serialization (array-backed load)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """Export the frozen index as flat arrays plus key/token lists.

        Freezes first if needed.  Tokens come out sorted; each token's
        postings occupy ``[offsets[i], offsets[i + 1])`` of the concatenated
        ``doc_ids`` / ``weights`` vectors (weights are the precomputed
        ``idf² · count`` values used by :meth:`search`).  The export is a
        pure function of the indexed documents, so build → export → import
        → export round-trips to identical arrays.
        """
        self.freeze()
        tokens = sorted(self._token_arrays)
        offsets = np.zeros(len(tokens) + 1, dtype=np.int64)
        for i, token in enumerate(tokens):
            offsets[i + 1] = offsets[i] + len(self._token_arrays[token][0])
        doc_ids = np.zeros(int(offsets[-1]), dtype=np.int64)
        weights = np.zeros(int(offsets[-1]), dtype=np.float64)
        for i, token in enumerate(tokens):
            ids, weighted = self._token_arrays[token]
            doc_ids[offsets[i] : offsets[i + 1]] = ids
            weights[offsets[i] : offsets[i + 1]] = weighted
        return {
            "tokens": tokens,
            "doc_keys": list(self._doc_key),
            "offsets": offsets,
            "doc_ids": doc_ids,
            "weights": weights,
            "idf": np.array([self._idf[token] for token in tokens]),
            "doc_norm": self._doc_norm.astype(np.float64, copy=False),
        }

    @classmethod
    def from_state(cls, state: dict) -> "InvertedIndex":
        """Rebuild a frozen index from :meth:`to_state` output.

        Nothing is recomputed: the per-token posting arrays are zero-copy
        slices of the (possibly memory-mapped) concatenated vectors.  The
        returned index is frozen — :meth:`add` raises, exactly as after an
        in-memory :meth:`freeze`.
        """
        index = cls()
        offsets = np.asarray(state["offsets"])
        doc_ids = state["doc_ids"]
        weights = state["weights"]
        index._doc_key = list(state["doc_keys"])
        index._idf = dict(zip(state["tokens"], np.asarray(state["idf"]).tolist()))
        index._token_arrays = {
            token: (
                doc_ids[offsets[i] : offsets[i + 1]],
                weights[offsets[i] : offsets[i + 1]],
            )
            for i, token in enumerate(state["tokens"])
        }
        index._doc_norm = state["doc_norm"]
        index._frozen = True
        return index

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @property
    def document_count(self) -> int:
        return len(self._doc_key)

    def document_frequency(self, token: str) -> int:
        if self._frozen:
            # array-backed source of truth: a from_state() index carries no
            # postings dicts at all
            entry = self._token_arrays.get(token)
            return len(entry[0]) if entry is not None else 0
        return len(self._postings.get(token, ()))

    def idf(self, token: str) -> float:
        cached = self._idf.get(token)
        if cached is not None:
            return cached
        return 1.0 + math.log(
            (len(self._doc_key) + 1) / (self.document_frequency(token) + 1)
        )

    # ------------------------------------------------------------------
    # retrieval
    # ------------------------------------------------------------------
    def search(self, query: str, top_k: int = 10) -> list[IndexHit]:
        """Top-k documents by TF-IDF score, deduplicated by key (max score).

        Results are sorted by descending score; ties broken by the string
        form of the key so retrieval is fully deterministic.
        """
        if not self._frozen:
            self.freeze()
        query_counts = Counter(tokenize(query))
        if not query_counts:
            return []
        scores = np.zeros(len(self._doc_key))
        matched = False
        for token, query_count in query_counts.items():
            entry = self._token_arrays.get(token)
            if entry is None:
                continue
            matched = True
            doc_ids, weighted_counts = entry
            scores[doc_ids] += query_count * weighted_counts
        if not matched:
            return []
        hit_ids = np.flatnonzero(scores)
        normalised = scores[hit_ids] / self._doc_norm[hit_ids]
        by_key: dict[Hashable, float] = {}
        for doc_id, score in zip(hit_ids.tolist(), normalised.tolist()):
            key = self._doc_key[doc_id]
            if score > by_key.get(key, 0.0):
                by_key[key] = score
        top = heapq.nlargest(
            top_k, by_key.items(), key=lambda item: (item[1], str(item[0]))
        )
        return [IndexHit(key=key, score=score) for key, score in top]

    def keys_with_token(self, token: str) -> set[Hashable]:
        """All keys whose documents contain ``token``.

        The argument is normalised with the same :func:`tokenize` used when
        documents were indexed (so ``"Einstein!"`` matches the indexed token
        ``einstein``); multi-token input returns keys containing *all* of the
        tokens.
        """
        tokens = tokenize(token)
        if not tokens:
            return set()
        keys: set[Hashable] | None = None
        for tok in tokens:
            if self._frozen:
                entry = self._token_arrays.get(tok)
                doc_ids = entry[0].tolist() if entry is not None else ()
            else:
                doc_ids = self._postings.get(tok, ())
            holders = {self._doc_key[doc_id] for doc_id in doc_ids}
            keys = holders if keys is None else keys & holders
            if not keys:
                return set()
        return keys
