"""Inverted index with TF-IDF scoring — the offline Lucene substitute.

Two callers:

* the **lemma index** used for candidate entity retrieval ("use a text index
  to collect candidate entities based on overlap between cell and lemma
  tokens", paper Section 4.3/Figure 2), and
* the **table index** of the search application (documents are table cells /
  contexts).

Documents are short strings; postings store raw term counts.  Scoring is the
usual ``sum_t tf_q(t) * tf_d(t) * idf(t)^2`` cosine numerator with document
length normalisation, which is all the ranking fidelity these callers need.

Retrieval is the system's hottest path (the paper's Figure 7 attributes ~80%
of annotation time to lemma-index probing), so :meth:`InvertedIndex.freeze`
precomputes everything a query needs into flat arrays: per-token IDF values
(previously recomputed per token per query), per-token posting arrays
(document ids + IDF²-weighted counts) and the document norm vector.  A search
is then one vectorised accumulate per query token.

Two retrieval paths share those arrays:

* :meth:`search` — the single-query reference.  It accumulates into a pooled
  per-thread scratch vector (allocated once per index, touched entries reset
  after each query) instead of a fresh dense ``np.zeros(n_docs)`` per call.
* :meth:`search_batch` — the batch-first path used by the batched candidate
  engine.  Each query is scored in a *compact* candidate-id space: the union
  of its tokens' posting doc-ids, scattered per token, deduplicated per key
  with ``np.maximum.reduceat`` and cut to top-k with a partition — no dense
  allocation, no Python per-document loop.  Both paths return identical hits
  (scores and ordering), which the equivalence tests assert.

The frozen arrays are also the index's *serialization*:
:meth:`InvertedIndex.to_state` exports them as flat concatenated vectors
(tokens sorted, per-token slices described by an offsets array) and
:meth:`InvertedIndex.from_state` rebuilds a frozen index directly from those
arrays — no re-tokenisation, no IDF recomputation, no norm pass.  Artifact
bundles (:mod:`repro.serve.bundle`) persist exactly this state, which is why
a served index starts warm instead of replaying ``freeze()``.
"""

from __future__ import annotations

import heapq
import math
import threading
from collections import Counter
from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

import numpy as np

from repro.text.tokenize import tokenize


@dataclass(frozen=True)
class IndexHit:
    """One retrieval result: a document key and its match score."""

    key: Hashable
    score: float


class InvertedIndex:
    """A tiny in-memory inverted index over short text documents.

    Keys are arbitrary hashable identifiers; one key may be indexed under
    several documents (e.g. an entity with several lemmas) — scores then take
    the max over that key's documents.
    """

    def __init__(self) -> None:
        self._postings: dict[str, dict[int, int]] = {}
        self._doc_key: list[Hashable] = []
        self._frozen = False
        # filled in freeze()
        self._idf: dict[str, float] = {}
        self._doc_norm: np.ndarray = np.zeros(0, dtype=np.float64)
        self._token_arrays: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        # pooled scratch vectors for search(); one per thread so pipelines
        # running workers > 1 never share an accumulator
        self._scratch = threading.local()
        # filled lazily by _ensure_key_arrays() (search_batch dedup arrays)
        self._doc_key_id: np.ndarray | None = None
        self._key_list: list[Hashable] = []
        self._key_rank: np.ndarray | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(self, key: Hashable, text: str) -> None:
        """Index one document ``text`` under ``key``."""
        if self._frozen:
            raise RuntimeError("index is frozen; create a new index to add more")
        counts = Counter(tokenize(text))
        if not counts:
            return
        doc_id = len(self._doc_key)
        self._doc_key.append(key)
        for token, count in counts.items():
            self._postings.setdefault(token, {})[doc_id] = count

    def add_many(self, items: Iterable[tuple[Hashable, str]]) -> None:
        for key, text in items:
            self.add(key, text)

    def freeze(self) -> None:
        """Precompute IDF values, posting arrays and document norms (idempotent).

        After freezing, :meth:`search` touches only flat arrays: per token a
        ``(doc_ids, idf²·count)`` pair, plus one norm per document.
        """
        if self._frozen:
            return
        n_docs = len(self._doc_key)
        self._idf = {
            token: 1.0 + math.log((n_docs + 1) / (len(postings) + 1))
            for token, postings in self._postings.items()
        }
        norms_squared = np.zeros(n_docs, dtype=np.float64)
        for token, postings in self._postings.items():
            token_idf = self._idf[token]
            doc_ids = np.fromiter(postings.keys(), dtype=np.intp, count=len(postings))
            counts = np.fromiter(
                postings.values(), dtype=np.float64, count=len(postings)
            )
            norms_squared[doc_ids] += (counts * token_idf) ** 2
            self._token_arrays[token] = (doc_ids, counts * token_idf * token_idf)
        norms = np.sqrt(norms_squared)
        norms[norms == 0.0] = 1.0
        self._doc_norm = norms
        self._frozen = True

    # ------------------------------------------------------------------
    # frozen-state serialization (array-backed load)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """Export the frozen index as flat arrays plus key/token lists.

        Freezes first if needed.  Tokens come out sorted; each token's
        postings occupy ``[offsets[i], offsets[i + 1])`` of the concatenated
        ``doc_ids`` / ``weights`` vectors (weights are the precomputed
        ``idf² · count`` values used by :meth:`search`).  The export is a
        pure function of the indexed documents, so build → export → import
        → export round-trips to identical arrays.
        """
        self.freeze()
        tokens = sorted(self._token_arrays)
        offsets = np.zeros(len(tokens) + 1, dtype=np.int64)
        for i, token in enumerate(tokens):
            offsets[i + 1] = offsets[i] + len(self._token_arrays[token][0])
        doc_ids = np.zeros(int(offsets[-1]), dtype=np.int64)
        weights = np.zeros(int(offsets[-1]), dtype=np.float64)
        for i, token in enumerate(tokens):
            ids, weighted = self._token_arrays[token]
            doc_ids[offsets[i] : offsets[i + 1]] = ids
            weights[offsets[i] : offsets[i + 1]] = weighted
        return {
            "tokens": tokens,
            "doc_keys": list(self._doc_key),
            "offsets": offsets,
            "doc_ids": doc_ids,
            "weights": weights,
            "idf": np.array([self._idf[token] for token in tokens]),
            "doc_norm": self._doc_norm.astype(np.float64, copy=False),
        }

    @classmethod
    def from_state(cls, state: dict) -> "InvertedIndex":
        """Rebuild a frozen index from :meth:`to_state` output.

        Nothing is recomputed: the per-token posting arrays are zero-copy
        slices of the (possibly memory-mapped) concatenated vectors.  The
        returned index is frozen — :meth:`add` raises, exactly as after an
        in-memory :meth:`freeze`.
        """
        index = cls()
        offsets = np.asarray(state["offsets"])
        doc_ids = state["doc_ids"]
        weights = state["weights"]
        index._doc_key = list(state["doc_keys"])
        index._idf = dict(zip(state["tokens"], np.asarray(state["idf"]).tolist()))
        index._token_arrays = {
            token: (
                doc_ids[offsets[i] : offsets[i + 1]],
                weights[offsets[i] : offsets[i + 1]],
            )
            for i, token in enumerate(state["tokens"])
        }
        index._doc_norm = state["doc_norm"]
        index._frozen = True
        return index

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @property
    def document_count(self) -> int:
        return len(self._doc_key)

    def document_frequency(self, token: str) -> int:
        if self._frozen:
            # array-backed source of truth: a from_state() index carries no
            # postings dicts at all
            entry = self._token_arrays.get(token)
            return len(entry[0]) if entry is not None else 0
        return len(self._postings.get(token, ()))

    def idf(self, token: str) -> float:
        cached = self._idf.get(token)
        if cached is not None:
            return cached
        return 1.0 + math.log(
            (len(self._doc_key) + 1) / (self.document_frequency(token) + 1)
        )

    # ------------------------------------------------------------------
    # retrieval
    # ------------------------------------------------------------------
    def _scratch_scores(self) -> np.ndarray:
        """This thread's pooled score accumulator (zeros between queries)."""
        scores = getattr(self._scratch, "scores", None)
        if scores is None or len(scores) != len(self._doc_key):
            scores = np.zeros(len(self._doc_key), dtype=np.float64)
            self._scratch.scores = scores
        return scores

    def search(self, query: str, top_k: int = 10) -> list[IndexHit]:
        """Top-k documents by TF-IDF score, deduplicated by key (max score).

        Results are sorted by descending score; ties broken by the string
        form of the key so retrieval is fully deterministic.
        """
        if not self._frozen:
            self.freeze()
        query_counts = Counter(tokenize(query))
        if not query_counts:
            return []
        scores = self._scratch_scores()
        touched: list[np.ndarray] = []
        try:
            for token, query_count in query_counts.items():
                entry = self._token_arrays.get(token)
                if entry is None:
                    continue
                doc_ids, weighted_counts = entry
                scores[doc_ids] += query_count * weighted_counts
                touched.append(doc_ids)
            if not touched:
                return []
            # same ascending hit-id order np.flatnonzero over the dense
            # vector produced (every touched doc scores > 0: idf >= 1)
            hit_ids = np.unique(np.concatenate(touched))
            normalised = scores[hit_ids] / self._doc_norm[hit_ids]
        finally:
            for doc_ids in touched:
                scores[doc_ids] = 0.0
        by_key: dict[Hashable, float] = {}
        for doc_id, score in zip(hit_ids.tolist(), normalised.tolist()):
            key = self._doc_key[doc_id]
            if score > by_key.get(key, 0.0):
                by_key[key] = score
        top = heapq.nlargest(
            top_k, by_key.items(), key=lambda item: (item[1], str(item[0]))
        )
        return [IndexHit(key=key, score=score) for key, score in top]

    # ------------------------------------------------------------------
    # batched retrieval (compact candidate-id space)
    # ------------------------------------------------------------------
    def _ensure_key_arrays(self) -> None:
        """Intern document keys for vectorised per-key dedup (idempotent).

        ``_doc_key_id[d]`` is the interned id of document ``d``'s key;
        ``_key_rank[k]`` is key ``k``'s position in the ``str(key)`` sort
        order, the same tie-break :meth:`search` applies.

        Thread-safe without a lock: concurrent first callers build identical
        arrays, and ``_doc_key_id`` — the readiness gate — is published
        *last*, so a reader that sees it non-None sees the other two fields.
        """
        if self._doc_key_id is not None:
            return
        key_ids: dict[Hashable, int] = {}
        doc_key_id = np.zeros(len(self._doc_key), dtype=np.intp)
        for doc_id, key in enumerate(self._doc_key):
            interned = key_ids.get(key)
            if interned is None:
                interned = len(key_ids)
                key_ids[key] = interned
            doc_key_id[doc_id] = interned
        key_list = list(key_ids)
        rank = np.zeros(len(key_list), dtype=np.intp)
        by_str = sorted(range(len(key_list)), key=lambda i: str(key_list[i]))
        for position, key_index in enumerate(by_str):
            rank[key_index] = position
        self._key_list = key_list
        self._key_rank = rank
        self._doc_key_id = doc_key_id

    def _compact_scratch(self, n: int) -> np.ndarray:
        """A zeroed length-``n`` view of this thread's pooled accumulator.

        The backing buffer grows geometrically and is reused across
        :meth:`_search_compact` calls, so batch scoring stops allocating a
        fresh score vector per query.  Zero-filling a view is value-identical
        to ``np.zeros(n)``, keeping batch scores bit-identical.
        """
        buffer = getattr(self._scratch, "compact", None)
        if buffer is None or len(buffer) < n:
            buffer = np.zeros(
                max(n, 2 * len(buffer) if buffer is not None else n),
                dtype=np.float64,
            )
            self._scratch.compact = buffer
        view = buffer[:n]
        view.fill(0.0)
        return view

    def _search_compact(
        self, query_counts: Counter[str], top_k: int
    ) -> list[IndexHit]:
        """One query scored over the union of its tokens' posting lists.

        Accumulation order per document matches :meth:`search` exactly (one
        scatter-add per query token, in query token order), so scores are
        bit-identical to the dense path.
        """
        if top_k < 1:
            return []
        entries = []
        for token, query_count in query_counts.items():
            entry = self._token_arrays.get(token)
            if entry is not None:
                entries.append((query_count, entry))
        if not entries:
            return []
        hit_ids = np.unique(np.concatenate([entry[0] for _, entry in entries]))
        scores = self._compact_scratch(len(hit_ids))
        for query_count, (doc_ids, weighted_counts) in entries:
            positions = np.searchsorted(hit_ids, doc_ids)
            scores[positions] += query_count * weighted_counts
        normalised = scores / self._doc_norm[hit_ids]
        # per-key max score (vectorised version of search()'s dict pass)
        assert self._doc_key_id is not None and self._key_rank is not None
        key_ids = self._doc_key_id[hit_ids]
        order = np.argsort(key_ids, kind="stable")
        sorted_keys = key_ids[order]
        group_starts = np.flatnonzero(
            np.concatenate(([True], sorted_keys[1:] != sorted_keys[:-1]))
        )
        unique_keys = sorted_keys[group_starts]
        best_scores = np.maximum.reduceat(normalised[order], group_starts)
        # partition down to the top-k score threshold, keeping every tie at
        # the boundary so the final (score, str(key)) sort stays exact
        n_keys = len(unique_keys)
        if n_keys > top_k:
            kth_score = np.partition(best_scores, n_keys - top_k)[n_keys - top_k]
            keep = best_scores >= kth_score
            unique_keys = unique_keys[keep]
            best_scores = best_scores[keep]
        ranks = self._key_rank[unique_keys]
        # descending score, ties broken by descending str(key) rank — the
        # ordering heapq.nlargest produces in search()
        final = np.lexsort((-ranks, -best_scores))[:top_k]
        return [
            IndexHit(key=self._key_list[unique_keys[i]], score=float(best_scores[i]))
            for i in final
        ]

    def search_batch(
        self, queries: Sequence[str], top_k: int = 10
    ) -> list[list[IndexHit]]:
        """Top-k hits for every query, identical to per-query :meth:`search`.

        Distinct query strings are tokenized and scored once; duplicates
        share the (immutable) result list.  Scoring never allocates a dense
        document vector: each query works in the compact id space of its own
        matched postings.
        """
        if not self._frozen:
            self.freeze()
        self._ensure_key_arrays()
        by_query: dict[str, list[IndexHit]] = {}
        results: list[list[IndexHit]] = []
        for query in queries:
            hits = by_query.get(query)
            if hits is None:
                query_counts = Counter(tokenize(query))
                hits = (
                    self._search_compact(query_counts, top_k)
                    if query_counts
                    else []
                )
                by_query[query] = hits
            results.append(hits)
        return results

    def keys_with_token(self, token: str) -> set[Hashable]:
        """All keys whose documents contain ``token``.

        The argument is normalised with the same :func:`tokenize` used when
        documents were indexed (so ``"Einstein!"`` matches the indexed token
        ``einstein``); multi-token input returns keys containing *all* of the
        tokens.
        """
        tokens = tokenize(token)
        if not tokens:
            return set()
        keys: set[Hashable] | None = None
        for tok in tokens:
            if self._frozen:
                entry = self._token_arrays.get(tok)
                doc_ids = entry[0].tolist() if entry is not None else ()
            else:
                doc_ids = self._postings.get(tok, ())
            holders = {self._doc_key[doc_id] for doc_id in doc_ids}
            keys = holders if keys is None else keys & holders
            if not keys:
                return set()
        return keys
