"""Inverted index with TF-IDF scoring — the offline Lucene substitute.

Two callers:

* the **lemma index** used for candidate entity retrieval ("use a text index
  to collect candidate entities based on overlap between cell and lemma
  tokens", paper Section 4.3/Figure 2), and
* the **table index** of the search application (documents are table cells /
  contexts).

Documents are short strings; postings store raw term counts.  Scoring is the
usual ``sum_t tf_q(t) * tf_d(t) * idf(t)^2`` cosine numerator with document
length normalisation, which is all the ranking fidelity these callers need.

Retrieval is the system's hottest path (the paper's Figure 7 attributes ~80%
of annotation time to lemma-index probing), so :meth:`InvertedIndex.freeze`
precomputes everything a query needs into flat arrays: per-token IDF values
(previously recomputed per token per query), per-token posting arrays
(document ids + IDF²-weighted counts) and the document norm vector.  A search
is then one vectorised accumulate per query token.
"""

from __future__ import annotations

import heapq
import math
from collections import Counter
from dataclasses import dataclass
from typing import Hashable, Iterable

import numpy as np

from repro.text.tokenize import tokenize


@dataclass(frozen=True)
class IndexHit:
    """One retrieval result: a document key and its match score."""

    key: Hashable
    score: float


class InvertedIndex:
    """A tiny in-memory inverted index over short text documents.

    Keys are arbitrary hashable identifiers; one key may be indexed under
    several documents (e.g. an entity with several lemmas) — scores then take
    the max over that key's documents.
    """

    def __init__(self) -> None:
        self._postings: dict[str, dict[int, int]] = {}
        self._doc_key: list[Hashable] = []
        self._frozen = False
        # filled in freeze()
        self._idf: dict[str, float] = {}
        self._doc_norm: np.ndarray = np.zeros(0)
        self._token_arrays: dict[str, tuple[np.ndarray, np.ndarray]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(self, key: Hashable, text: str) -> None:
        """Index one document ``text`` under ``key``."""
        if self._frozen:
            raise RuntimeError("index is frozen; create a new index to add more")
        counts = Counter(tokenize(text))
        if not counts:
            return
        doc_id = len(self._doc_key)
        self._doc_key.append(key)
        for token, count in counts.items():
            self._postings.setdefault(token, {})[doc_id] = count

    def add_many(self, items: Iterable[tuple[Hashable, str]]) -> None:
        for key, text in items:
            self.add(key, text)

    def freeze(self) -> None:
        """Precompute IDF values, posting arrays and document norms (idempotent).

        After freezing, :meth:`search` touches only flat arrays: per token a
        ``(doc_ids, idf²·count)`` pair, plus one norm per document.
        """
        if self._frozen:
            return
        n_docs = len(self._doc_key)
        self._idf = {
            token: 1.0 + math.log((n_docs + 1) / (len(postings) + 1))
            for token, postings in self._postings.items()
        }
        norms_squared = np.zeros(n_docs)
        for token, postings in self._postings.items():
            token_idf = self._idf[token]
            doc_ids = np.fromiter(postings.keys(), dtype=np.intp, count=len(postings))
            counts = np.fromiter(
                postings.values(), dtype=np.float64, count=len(postings)
            )
            norms_squared[doc_ids] += (counts * token_idf) ** 2
            self._token_arrays[token] = (doc_ids, counts * token_idf * token_idf)
        norms = np.sqrt(norms_squared)
        norms[norms == 0.0] = 1.0
        self._doc_norm = norms
        self._frozen = True

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @property
    def document_count(self) -> int:
        return len(self._doc_key)

    def document_frequency(self, token: str) -> int:
        return len(self._postings.get(token, ()))

    def idf(self, token: str) -> float:
        cached = self._idf.get(token)
        if cached is not None:
            return cached
        return 1.0 + math.log(
            (len(self._doc_key) + 1) / (self.document_frequency(token) + 1)
        )

    # ------------------------------------------------------------------
    # retrieval
    # ------------------------------------------------------------------
    def search(self, query: str, top_k: int = 10) -> list[IndexHit]:
        """Top-k documents by TF-IDF score, deduplicated by key (max score).

        Results are sorted by descending score; ties broken by the string
        form of the key so retrieval is fully deterministic.
        """
        if not self._frozen:
            self.freeze()
        query_counts = Counter(tokenize(query))
        if not query_counts:
            return []
        scores = np.zeros(len(self._doc_key))
        matched = False
        for token, query_count in query_counts.items():
            entry = self._token_arrays.get(token)
            if entry is None:
                continue
            matched = True
            doc_ids, weighted_counts = entry
            scores[doc_ids] += query_count * weighted_counts
        if not matched:
            return []
        hit_ids = np.flatnonzero(scores)
        normalised = scores[hit_ids] / self._doc_norm[hit_ids]
        by_key: dict[Hashable, float] = {}
        for doc_id, score in zip(hit_ids.tolist(), normalised.tolist()):
            key = self._doc_key[doc_id]
            if score > by_key.get(key, 0.0):
                by_key[key] = score
        top = heapq.nlargest(
            top_k, by_key.items(), key=lambda item: (item[1], str(item[0]))
        )
        return [IndexHit(key=key, score=score) for key, score in top]

    def keys_with_token(self, token: str) -> set[Hashable]:
        """All keys whose documents contain ``token``.

        The argument is normalised with the same :func:`tokenize` used when
        documents were indexed (so ``"Einstein!"`` matches the indexed token
        ``einstein``); multi-token input returns keys containing *all* of the
        tokens.
        """
        tokens = tokenize(token)
        if not tokens:
            return set()
        keys: set[Hashable] | None = None
        for tok in tokens:
            postings = self._postings.get(tok, {})
            holders = {self._doc_key[doc_id] for doc_id in postings}
            keys = holders if keys is None else keys & holders
            if not keys:
                return set()
        return keys
