"""Inverted index with TF-IDF scoring — the offline Lucene substitute.

Two callers:

* the **lemma index** used for candidate entity retrieval ("use a text index
  to collect candidate entities based on overlap between cell and lemma
  tokens", paper Section 4.3/Figure 2), and
* the **table index** of the search application (documents are table cells /
  contexts).

Documents are short strings; postings store raw term counts.  Scoring is the
usual ``sum_t tf_q(t) * tf_d(t) * idf(t)^2`` cosine numerator with document
length normalisation, which is all the ranking fidelity these callers need.
"""

from __future__ import annotations

import heapq
import math
from collections import Counter
from dataclasses import dataclass
from typing import Hashable, Iterable

from repro.text.tokenize import tokenize


@dataclass(frozen=True)
class IndexHit:
    """One retrieval result: a document key and its match score."""

    key: Hashable
    score: float


class InvertedIndex:
    """A tiny in-memory inverted index over short text documents.

    Keys are arbitrary hashable identifiers; one key may be indexed under
    several documents (e.g. an entity with several lemmas) — scores then take
    the max over that key's documents.
    """

    def __init__(self) -> None:
        self._postings: dict[str, dict[int, int]] = {}
        self._doc_key: list[Hashable] = []
        self._doc_norm: list[float] = []
        self._doc_counts: list[Counter[str]] = []
        self._frozen = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(self, key: Hashable, text: str) -> None:
        """Index one document ``text`` under ``key``."""
        if self._frozen:
            raise RuntimeError("index is frozen; create a new index to add more")
        counts = Counter(tokenize(text))
        if not counts:
            return
        doc_id = len(self._doc_key)
        self._doc_key.append(key)
        self._doc_counts.append(counts)
        self._doc_norm.append(0.0)  # filled in freeze()
        for token, count in counts.items():
            self._postings.setdefault(token, {})[doc_id] = count

    def add_many(self, items: Iterable[tuple[Hashable, str]]) -> None:
        for key, text in items:
            self.add(key, text)

    def freeze(self) -> None:
        """Finalise IDF statistics and document norms (idempotent)."""
        if self._frozen:
            return
        for doc_id, counts in enumerate(self._doc_counts):
            norm = math.sqrt(
                sum((count * self.idf(token)) ** 2 for token, count in counts.items())
            )
            self._doc_norm[doc_id] = norm if norm > 0 else 1.0
        self._frozen = True

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @property
    def document_count(self) -> int:
        return len(self._doc_key)

    def document_frequency(self, token: str) -> int:
        return len(self._postings.get(token, ()))

    def idf(self, token: str) -> float:
        return 1.0 + math.log(
            (len(self._doc_key) + 1) / (self.document_frequency(token) + 1)
        )

    # ------------------------------------------------------------------
    # retrieval
    # ------------------------------------------------------------------
    def search(self, query: str, top_k: int = 10) -> list[IndexHit]:
        """Top-k documents by TF-IDF score, deduplicated by key (max score).

        Results are sorted by descending score; ties broken by the string
        form of the key so retrieval is fully deterministic.
        """
        if not self._frozen:
            self.freeze()
        query_counts = Counter(tokenize(query))
        if not query_counts:
            return []
        scores: dict[int, float] = {}
        for token, query_count in query_counts.items():
            postings = self._postings.get(token)
            if not postings:
                continue
            token_idf = self.idf(token)
            weight = query_count * token_idf * token_idf
            for doc_id, doc_count in postings.items():
                scores[doc_id] = scores.get(doc_id, 0.0) + weight * doc_count
        if not scores:
            return []
        by_key: dict[Hashable, float] = {}
        for doc_id, score in scores.items():
            normalised = score / self._doc_norm[doc_id]
            key = self._doc_key[doc_id]
            if normalised > by_key.get(key, 0.0):
                by_key[key] = normalised
        top = heapq.nlargest(
            top_k, by_key.items(), key=lambda item: (item[1], str(item[0]))
        )
        return [IndexHit(key=key, score=score) for key, score in top]

    def keys_with_token(self, token: str) -> set[Hashable]:
        """All keys whose documents contain ``token`` (exact, lower-cased)."""
        postings = self._postings.get(token.lower(), {})
        return {self._doc_key[doc_id] for doc_id in postings}
