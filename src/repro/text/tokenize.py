"""Tokenisation used everywhere text meets the catalog.

A deliberately simple, deterministic tokeniser: Unicode-aware lower-casing,
alphanumeric token extraction, optional stop-token removal.  Both the lemma
index and every similarity measure use this one function so that scores are
comparable across modules.
"""

from __future__ import annotations

import re
from collections import Counter
from typing import Iterable

_TOKEN_RE = re.compile(r"[0-9]+|[^\W\d_]+", re.UNICODE)

#: Tokens carrying almost no discriminative signal in cell/lemma text.
STOP_TOKENS: frozenset[str] = frozenset(
    {"the", "a", "an", "of", "in", "on", "and", "or", "for", "to", "by"}
)


def tokenize(text: str, drop_stop_tokens: bool = False) -> list[str]:
    """Split ``text`` into lower-cased alphanumeric tokens.

    Args:
        text: Arbitrary cell, header, lemma or context text.
        drop_stop_tokens: When true, remove :data:`STOP_TOKENS` *unless* that
            would empty the result (a cell reading just "The The" should not
            vanish).

    Returns:
        List of tokens in order of appearance (may contain duplicates).
    """
    tokens = [match.group(0).lower() for match in _TOKEN_RE.finditer(text)]
    if drop_stop_tokens:
        kept = [token for token in tokens if token not in STOP_TOKENS]
        if kept:
            return kept
    return tokens


def token_counts(text: str) -> Counter[str]:
    """Bag-of-tokens view of ``text``."""
    return Counter(tokenize(text))


def token_set(text: str) -> frozenset[str]:
    """Set-of-tokens view of ``text``."""
    return frozenset(tokenize(text))


def ngrams(tokens: Iterable[str], n: int) -> list[tuple[str, ...]]:
    """Contiguous token n-grams (used by header phrase matching)."""
    tokens = list(tokens)
    if n <= 0:
        raise ValueError("n must be positive")
    if len(tokens) < n:
        return []
    return [tuple(tokens[i : i + n]) for i in range(len(tokens) - n + 1)]
