"""Precomputed token profiles for the f1/f2 similarity battery.

:func:`repro.core.features.text_lemma_features` is the hottest scalar code in
candidate generation: every (cell, entity-lemma) pair re-tokenizes both
strings, recomputes IDF weights and norms, and re-runs Jaro-Winkler between
every token pair.  For one corpus the same lemmas are compared thousands of
times and the same cell texts recur table after table, so almost all of that
work is repeated.

A :class:`TokenProfile` captures everything the battery needs about one
string, computed once: token counts in first-appearance order, the token set,
per-token ``count · idf`` weights, the TF-IDF norm and the case-folded
surface form.  :func:`text_lemma_features_profiled` then evaluates the exact
battery of ``text_lemma_features`` over profiles — the arithmetic is kept
term-for-term identical (same expression trees, same iteration order), so the
resulting feature vectors are bit-identical to the scalar path; the batched
candidate engine's equivalence tests assert this.

:class:`JaroWinklerCache` memoises the token-pair similarity inside
SoftTFIDF — the vocabulary is small and closed (catalog lemmas plus corpus
cell tokens), so the hit rate is near 1 after the first few tables.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.text.similarity import jaro_winkler
from repro.text.tfidf import TfidfWeights
from repro.text.tokenize import tokenize

#: |f1| == |f2| — keep in sync with repro.core.features.F1_FEATURE_NAMES
_N_FEATURES = 6


@dataclass(frozen=True)
class TokenProfile:
    """One string's precomputed view for the similarity battery."""

    text: str
    #: case-folded surface form (the battery's exact-match side)
    folded: str
    #: ``count · idf`` per token, in first-appearance (Counter) order
    weights: dict[str, float]
    #: raw token counts, same order as ``weights``
    counts: dict[str, int]
    #: per-token IDF under the profile's corpus statistics
    idf: dict[str, float]
    token_set: frozenset[str]
    #: ``sqrt(Σ (count · idf)²)`` accumulated in token order
    norm: float

    @classmethod
    def from_text(
        cls, text: str, weights: TfidfWeights | None = None
    ) -> "TokenProfile":
        counts = Counter(tokenize(text))
        idf = {
            token: (weights.idf(token) if weights is not None else 1.0)
            for token in counts
        }
        token_weights = {
            token: count * idf[token] for token, count in counts.items()
        }
        # same accumulation the scalar battery performs:
        # sqrt(sum((count * idf) ** 2)) over tokens in Counter order
        norm = math.sqrt(sum((c * idf[t]) ** 2 for t, c in counts.items()))
        return cls(
            text=text,
            folded=text.strip().lower(),
            weights=token_weights,
            counts=dict(counts),
            idf=idf,
            token_set=frozenset(counts),
            norm=norm,
        )


class JaroWinklerCache:
    """Memoised ``jaro_winkler`` over lower-cased token pairs.

    Bounded by wholesale reset: token vocabularies are small, so the cap is
    effectively never hit — it only guards pathological corpora.
    """

    def __init__(self, max_entries: int = 1 << 20) -> None:
        self.max_entries = max_entries
        self._scores: dict[tuple[str, str], float] = {}

    def score(self, a: str, b: str) -> float:
        key = (a, b)
        cached = self._scores.get(key)
        if cached is None:
            if len(self._scores) >= self.max_entries:
                self._scores.clear()
            cached = jaro_winkler(a, b)
            self._scores[key] = cached
        return cached


def _cosine(a: TokenProfile, b: TokenProfile) -> float:
    """``cosine_tfidf`` over profiles (same expression tree)."""
    if not a.counts and not b.counts:
        return 1.0
    if not a.counts or not b.counts:
        return 0.0
    dot = 0.0
    other = b.weights
    for token, weight in a.weights.items():
        weight_b = other.get(token)
        if weight_b is not None:
            dot += weight * weight_b
    if a.norm == 0.0 or b.norm == 0.0:
        return 0.0
    return dot / (a.norm * b.norm)


def _soft_tfidf(
    a: TokenProfile, b: TokenProfile, jw: JaroWinklerCache, threshold: float = 0.9
) -> float:
    """``soft_tfidf`` over profiles with memoised Jaro-Winkler."""
    if not a.counts and not b.counts:
        return 1.0
    if not a.counts or not b.counts:
        return 0.0
    dot = 0.0
    for token_a, _count_a in a.counts.items():
        best_token = None
        best_score = threshold
        for token_b in b.counts:
            score = jw.score(token_a, token_b)
            if score >= best_score:
                best_score = score
                best_token = token_b
        if best_token is not None:
            # identical association order to the scalar battery:
            # ((((count_a * idf_a) * count_b) * idf_b) * score)
            dot += (
                a.weights[token_a]
                * b.counts[best_token]
                * b.idf[best_token]
                * best_score
            )
    if a.norm == 0.0 or b.norm == 0.0:
        return 0.0
    return min(dot / (a.norm * b.norm), 1.0)


def _set_overlap(a: TokenProfile, b: TokenProfile) -> tuple[float, float]:
    """(jaccard, dice) over precomputed token sets."""
    set_a, set_b = a.token_set, b.token_set
    if not set_a and not set_b:
        return 1.0, 1.0
    if not set_a or not set_b:
        return 0.0, 0.0
    intersection = len(set_a & set_b)
    jaccard = intersection / len(set_a | set_b)
    dice = 2.0 * intersection / (len(set_a) + len(set_b))
    return jaccard, dice


def text_lemma_features_profiled(
    text: TokenProfile,
    lemmas: tuple[TokenProfile, ...],
    jw: JaroWinklerCache,
) -> np.ndarray:
    """``text_lemma_features`` evaluated over precomputed profiles.

    Bit-identical to the scalar battery: each similarity is the max over
    lemmas in lemma order, with the same per-measure arithmetic.
    """
    vector = np.zeros(_N_FEATURES)
    vector[-1] = 1.0
    if not text.text or not lemmas:
        return vector
    best_cosine = best_soft = best_jaccard = best_dice = 0.0
    exact = 0.0
    for lemma in lemmas:
        best_cosine = max(best_cosine, _cosine(text, lemma))
        best_soft = max(best_soft, _soft_tfidf(text, lemma, jw))
        jaccard, dice = _set_overlap(text, lemma)
        best_jaccard = max(best_jaccard, jaccard)
        best_dice = max(best_dice, dice)
        if text.folded == lemma.folded:
            exact = 1.0
    vector[0] = best_cosine
    vector[1] = best_soft
    vector[2] = best_jaccard
    vector[3] = best_dice
    vector[4] = exact
    return vector
