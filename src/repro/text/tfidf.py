"""Corpus-level TF-IDF statistics.

The annotator's cosine feature (paper Section 4.2.1) is the *standard TF-IDF
cosine* [18]: token weights combine within-string term frequency with an
inverse document frequency computed over the lemma corpus.  This module owns
the document-frequency table; :mod:`repro.text.similarity` consumes it.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, Mapping

from repro.text.tokenize import tokenize


class TfidfWeights:
    """Document-frequency statistics with smoothed IDF lookup.

    ``idf(token) = 1 + log((N + 1) / (df(token) + 1))`` — the add-one variants
    keep unseen tokens finite and seen-everywhere tokens positive, so cosine
    values stay in ``(0, 1]``.
    """

    def __init__(self) -> None:
        self._document_frequency: Counter[str] = Counter()
        self._documents = 0

    @classmethod
    def from_documents(cls, documents: Iterable[str]) -> "TfidfWeights":
        """Build statistics from an iterable of text documents (lemmas)."""
        weights = cls()
        for document in documents:
            weights.add_document(document)
        return weights

    def add_document(self, document: str) -> None:
        """Count one document's distinct tokens into the df table."""
        self._documents += 1
        for token in set(tokenize(document)):
            self._document_frequency[token] += 1

    @property
    def document_count(self) -> int:
        return self._documents

    def document_frequency(self, token: str) -> int:
        return self._document_frequency.get(token, 0)

    def idf(self, token: str) -> float:
        """Smoothed inverse document frequency of ``token``."""
        return 1.0 + math.log(
            (self._documents + 1) / (self._document_frequency.get(token, 0) + 1)
        )

    # ------------------------------------------------------------------
    # serialization (artifact bundles)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """JSON-compatible export: document count plus the df table."""
        return {
            "documents": self._documents,
            "document_frequency": dict(sorted(self._document_frequency.items())),
        }

    @classmethod
    def from_state(cls, state: dict) -> "TfidfWeights":
        """Rebuild statistics exported by :meth:`to_state` (no re-tokenising)."""
        weights = cls()
        weights._documents = int(state["documents"])
        weights._document_frequency = Counter(
            {token: int(count) for token, count in state["document_frequency"].items()}
        )
        return weights

    def vector(self, text: str) -> dict[str, float]:
        """Sparse TF-IDF vector of ``text`` (raw term counts times IDF)."""
        counts = Counter(tokenize(text))
        return {token: count * self.idf(token) for token, count in counts.items()}

    def norm(self, vector: Mapping[str, float]) -> float:
        return math.sqrt(sum(weight * weight for weight in vector.values()))
