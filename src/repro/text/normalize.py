"""Light-weight normalisation for cell and header strings.

Web table cells carry HTML entities, footnote markers, bracketed
qualifications and stray whitespace.  ``normalize_text`` strips this
decoration *without* attempting any linguistic normalisation — similarity
measures and the index operate on the cleaned surface form.
"""

from __future__ import annotations

import html
import re

_WHITESPACE_RE = re.compile(r"\s+")
_BRACKETED_RE = re.compile(r"\[[^\]]*\]|\([^)]*\)")
_FOOTNOTE_RE = re.compile(r"[*†‡#]+$")


def normalize_text(text: str, strip_bracketed: bool = True) -> str:
    """Clean a raw cell/header string.

    Unescapes HTML entities, optionally removes bracketed asides
    (``"Paris (France)" -> "Paris"``), strips trailing footnote markers and
    collapses whitespace.

    Args:
        text: The raw string as extracted from HTML.
        strip_bracketed: Remove ``[...]`` and ``(...)`` spans.  Disabled by
            callers that need the full surface form.
    """
    cleaned = html.unescape(text)
    if strip_bracketed:
        cleaned = _BRACKETED_RE.sub(" ", cleaned)
    cleaned = _FOOTNOTE_RE.sub("", cleaned.strip())
    cleaned = _WHITESPACE_RE.sub(" ", cleaned)
    return cleaned.strip()


_NUMERIC_RE = re.compile(
    r"^[+-]?(\d{1,3}(,\d{3})*|\d+)(\.\d+)?\s*(%|km|kg|m|s|mi|ft)?$"
)


def is_numeric_text(text: str) -> bool:
    """True when the cell is a number (optionally with unit/percent suffix).

    Numeric cells never refer to catalog entities, so candidate generation
    skips them — mirroring the paper's observation that annotation time
    depends on "the number of non-numerical columns".
    """
    return bool(_NUMERIC_RE.match(text.strip()))


_YEAR_RE = re.compile(r"^(1[5-9]\d{2}|20\d{2})$")


def is_year_text(text: str) -> bool:
    """True for a bare 4-digit year (a very common Web-table column)."""
    return bool(_YEAR_RE.match(text.strip()))
