"""String similarity measures, all returning values in ``[0, 1]``.

The feature vectors f1/f2 of the paper combine several similarity measures
between cell (or header) text and catalog lemmas: TF-IDF cosine [18], Jaccard
and a soft cosine [2].  We implement those plus Dice, normalised Levenshtein
and Jaro-Winkler (the secondary measure inside soft-TFIDF, following Bilenko
et al.'s SoftTFIDF).
"""

from __future__ import annotations

import math
from collections import Counter

from repro.text.tfidf import TfidfWeights
from repro.text.tokenize import token_set, tokenize


def jaccard(a: str, b: str) -> float:
    """Token-set Jaccard similarity ``|A ∩ B| / |A ∪ B|``."""
    set_a, set_b = token_set(a), token_set(b)
    if not set_a and not set_b:
        return 1.0
    if not set_a or not set_b:
        return 0.0
    return len(set_a & set_b) / len(set_a | set_b)


def dice(a: str, b: str) -> float:
    """Token-set Dice coefficient ``2|A ∩ B| / (|A| + |B|)``."""
    set_a, set_b = token_set(a), token_set(b)
    if not set_a and not set_b:
        return 1.0
    if not set_a or not set_b:
        return 0.0
    return 2.0 * len(set_a & set_b) / (len(set_a) + len(set_b))


def cosine_tfidf(a: str, b: str, weights: TfidfWeights | None = None) -> float:
    """TF-IDF weighted cosine between the token bags of ``a`` and ``b``.

    Without ``weights`` every token has IDF 1 (plain cosine) — convenient in
    tests; the annotator always passes lemma-corpus statistics.
    """
    counts_a, counts_b = Counter(tokenize(a)), Counter(tokenize(b))
    if not counts_a and not counts_b:
        return 1.0
    if not counts_a or not counts_b:
        return 0.0

    def idf(token: str) -> float:
        return weights.idf(token) if weights is not None else 1.0

    dot = 0.0
    for token, count in counts_a.items():
        if token in counts_b:
            dot += (count * idf(token)) * (counts_b[token] * idf(token))
    norm_a = math.sqrt(sum((c * idf(t)) ** 2 for t, c in counts_a.items()))
    norm_b = math.sqrt(sum((c * idf(t)) ** 2 for t, c in counts_b.items()))
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return dot / (norm_a * norm_b)


def levenshtein_distance(a: str, b: str) -> int:
    """Classic edit distance (two-row dynamic program)."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            current.append(
                min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
            )
        previous = current
    return previous[-1]


def levenshtein_similarity(a: str, b: str) -> float:
    """``1 - edit_distance / max_len``, case-insensitive."""
    a, b = a.lower(), b.lower()
    longest = max(len(a), len(b))
    if longest == 0:
        return 1.0
    return 1.0 - levenshtein_distance(a, b) / longest


def jaro(a: str, b: str) -> float:
    """Jaro similarity of two strings."""
    if a == b:
        return 1.0
    len_a, len_b = len(a), len(b)
    if len_a == 0 or len_b == 0:
        return 0.0
    match_window = max(len_a, len_b) // 2 - 1
    match_window = max(match_window, 0)
    matched_a = [False] * len_a
    matched_b = [False] * len_b
    matches = 0
    for i, char_a in enumerate(a):
        lo = max(0, i - match_window)
        hi = min(len_b, i + match_window + 1)
        for j in range(lo, hi):
            if matched_b[j] or b[j] != char_a:
                continue
            matched_a[i] = True
            matched_b[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0
    transpositions = 0
    k = 0
    for i in range(len_a):
        if not matched_a[i]:
            continue
        while not matched_b[k]:
            k += 1
        if a[i] != b[k]:
            transpositions += 1
        k += 1
    transpositions //= 2
    return (
        matches / len_a + matches / len_b + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler(a: str, b: str, prefix_scale: float = 0.1) -> float:
    """Jaro-Winkler: Jaro boosted by up to 4 characters of common prefix."""
    a, b = a.lower(), b.lower()
    base = jaro(a, b)
    prefix = 0
    for char_a, char_b in zip(a, b):
        if char_a != char_b or prefix == 4:
            break
        prefix += 1
    return base + prefix * prefix_scale * (1.0 - base)


def soft_tfidf(
    a: str,
    b: str,
    weights: TfidfWeights | None = None,
    threshold: float = 0.9,
) -> float:
    """SoftTFIDF of Bilenko et al. [2]: TF-IDF cosine with fuzzy token matches.

    Tokens of ``a`` and ``b`` are considered matching when their Jaro-Winkler
    similarity exceeds ``threshold``; each close pair contributes
    ``w_a(t) * w_b(u) * jw(t, u)`` to the dot product.  Catches
    typo/abbreviation variants ("Einstien" ~ "Einstein") that the hard cosine
    misses.
    """
    tokens_a, tokens_b = tokenize(a), tokenize(b)
    if not tokens_a and not tokens_b:
        return 1.0
    if not tokens_a or not tokens_b:
        return 0.0

    def idf(token: str) -> float:
        return weights.idf(token) if weights is not None else 1.0

    counts_a, counts_b = Counter(tokens_a), Counter(tokens_b)
    dot = 0.0
    for token_a, count_a in counts_a.items():
        best_token = None
        best_score = threshold
        for token_b in counts_b:
            score = jaro_winkler(token_a, token_b)
            if score >= best_score:
                best_score = score
                best_token = token_b
        if best_token is not None:
            dot += (
                count_a
                * idf(token_a)
                * counts_b[best_token]
                * idf(best_token)
                * best_score
            )
    norm_a = math.sqrt(sum((c * idf(t)) ** 2 for t, c in counts_a.items()))
    norm_b = math.sqrt(sum((c * idf(t)) ** 2 for t, c in counts_b.items()))
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return min(dot / (norm_a * norm_b), 1.0)
