"""Text and IR substrate: tokenisation, similarities and the lemma index.

The paper relies on a Lucene index over lemmas plus a battery of string
similarity measures (TF-IDF cosine [18], Jaccard, soft cosine [2]).  This
package provides pure-Python equivalents:

* :mod:`repro.text.tokenize` — lower-cased alphanumeric tokenisation,
* :mod:`repro.text.normalize` — cell/header normalisation helpers,
* :mod:`repro.text.tfidf` — corpus document-frequency statistics,
* :mod:`repro.text.similarity` — cosine/Jaccard/Dice/soft-TFIDF/edit
  similarities, all in ``[0, 1]``,
* :mod:`repro.text.index` — an inverted index with TF-IDF scoring used for
  candidate entity retrieval and table search.
"""

from repro.text.index import IndexHit, InvertedIndex
from repro.text.normalize import normalize_text
from repro.text.similarity import (
    cosine_tfidf,
    dice,
    jaccard,
    jaro_winkler,
    levenshtein_similarity,
    soft_tfidf,
)
from repro.text.tfidf import TfidfWeights
from repro.text.tokenize import tokenize

__all__ = [
    "IndexHit",
    "InvertedIndex",
    "TfidfWeights",
    "cosine_tfidf",
    "dice",
    "jaccard",
    "jaro_winkler",
    "levenshtein_similarity",
    "normalize_text",
    "soft_tfidf",
    "tokenize",
]
