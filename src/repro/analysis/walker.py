"""Source discovery, parsing and suppression extraction.

One :class:`ParsedModule` per file: the AST (with a parent map, so rules can
ask "am I inside a ``with self._lock:`` block?"), the raw source lines (for
finding context), and every ``# reprolint: ignore[...]`` suppression found
by the tokenizer.  Parsing happens once; every rule walks the same tree.

Parsed modules are cached on disk under ``<root>/.reprolint_cache/`` keyed
by the **content hash** of the source (plus a format tag and the Python
version, since pickled ASTs do not survive either changing), so warm runs
skip ``ast.parse`` entirely.  The cache is written immediately after
parsing — before any rule mutates ``Suppression.used`` — and is safe to
delete at any time.
"""

from __future__ import annotations

import ast
import hashlib
import io
import os
import pickle
import re
import sys
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

#: bump when ParsedModule's pickled shape changes
_CACHE_TAG = "reprolint-ast-v1"

DEFAULT_CACHE_DIRNAME = ".reprolint_cache"

# matches a suppression comment: hash, "reprolint:", then "ignore" with a
# bracketed rule list and a ":"-introduced justification
_SUPPRESSION = re.compile(
    r"#\s*reprolint:\s*ignore\[(?P<rules>[a-z0-9_,\s-]*)\]"
    r"\s*(?::\s*(?P<why>.*?))?\s*$"
)


@dataclass
class Suppression:
    """One inline ``reprolint: ignore`` comment."""

    line: int
    #: the line the suppression applies to (the next code line when the
    #: comment stands alone on its own line)
    applies_to: int
    rule_ids: tuple[str, ...]
    justification: str
    used: bool = False

    @property
    def justified(self) -> bool:
        return bool(self.justification.strip())


@dataclass
class ParsedModule:
    """One parsed source file plus everything rules need to inspect it."""

    path: Path
    rel_path: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    suppressions: list[Suppression] = field(default_factory=list)
    _parents: dict[ast.AST, ast.AST] = field(default_factory=dict)

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """The chain of enclosing nodes, innermost first."""
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def enclosing_function(
        self, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def suppressions_for(self, line: int) -> list[Suppression]:
        return [s for s in self.suppressions if s.applies_to == line]


def _extract_suppressions(source: str) -> list[Suppression]:
    """Every ``reprolint: ignore`` comment, with the line it applies to.

    A trailing comment applies to its own line; a comment alone on a line
    applies to the next line that carries code (so a suppression can sit
    above a long statement).
    """
    suppressions: list[Suppression] = []
    standalone: list[tuple[int, re.Match[str]]] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except tokenize.TokenError:  # pragma: no cover - ast.parse catches first
        return suppressions

    code_lines: set[int] = set()
    comments: list[tuple[int, int, str]] = []  # (line, col, text)
    for token in tokens:
        if token.type == tokenize.COMMENT:
            comments.append((token.start[0], token.start[1], token.string))
        elif token.type not in (
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENDMARKER,
            tokenize.ENCODING,
        ):
            code_lines.add(token.start[0])

    for line, col, text in comments:
        match = _SUPPRESSION.search(text)
        if match is None:
            continue
        if col > 0 and line in code_lines:
            rule_ids = _parse_rule_ids(match)
            suppressions.append(
                Suppression(
                    line=line,
                    applies_to=line,
                    rule_ids=rule_ids,
                    justification=(match.group("why") or ""),
                )
            )
        else:
            standalone.append((line, match))

    sorted_code_lines = sorted(code_lines)
    for line, match in standalone:
        applies_to = next(
            (code for code in sorted_code_lines if code > line), line
        )
        suppressions.append(
            Suppression(
                line=line,
                applies_to=applies_to,
                rule_ids=_parse_rule_ids(match),
                justification=(match.group("why") or ""),
            )
        )
    suppressions.sort(key=lambda s: s.line)
    return suppressions


def _parse_rule_ids(match: re.Match[str]) -> tuple[str, ...]:
    return tuple(
        rule_id.strip()
        for rule_id in match.group("rules").split(",")
        if rule_id.strip()
    )


def _cache_key(source: str) -> str:
    digest = hashlib.sha256()
    digest.update(_CACHE_TAG.encode())
    digest.update(f"py{sys.version_info[0]}.{sys.version_info[1]}".encode())
    digest.update(source.encode("utf-8"))
    return digest.hexdigest()


def _load_cached(
    cache_file: Path, path: Path, rel_path: str
) -> ParsedModule | None:
    try:
        with cache_file.open("rb") as handle:
            module = pickle.load(handle)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
        return None
    if not isinstance(module, ParsedModule):
        return None
    # the hash key covers content only: re-anchor location, reset run state
    module.path = path
    module.rel_path = rel_path
    for suppression in module.suppressions:
        suppression.used = False
    return module


def _store_cached(cache_file: Path, module: ParsedModule) -> None:
    try:
        cache_file.parent.mkdir(parents=True, exist_ok=True)
        tmp = cache_file.with_suffix(f".tmp{os.getpid()}")
        with tmp.open("wb") as handle:
            pickle.dump(module, handle, protocol=pickle.HIGHEST_PROTOCOL)
        tmp.replace(cache_file)
    except OSError:  # a read-only tree just runs uncached
        pass


def parse_module(
    path: Path, root: Path, cache_dir: Path | None = None
) -> ParsedModule:
    source = path.read_text(encoding="utf-8")
    rel_path = path.relative_to(root).as_posix()
    cache_file = None
    if cache_dir is not None:
        cache_file = cache_dir / f"{_cache_key(source)}.pkl"
        cached = _load_cached(cache_file, path, rel_path)
        if cached is not None:
            return cached
    tree = ast.parse(source, filename=str(path))
    module = ParsedModule(
        path=path,
        rel_path=rel_path,
        source=source,
        tree=tree,
        lines=source.splitlines(),
        suppressions=_extract_suppressions(source),
    )
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            module._parents[child] = parent
    if cache_file is not None:
        _store_cached(cache_file, module)
    return module


def discover_files(root: Path, paths: list[Path] | None = None) -> list[Path]:
    """Every ``.py`` file under ``src/`` and ``tests/`` (or explicit paths)."""
    if paths:
        files: list[Path] = []
        for path in paths:
            if path.is_dir():
                files.extend(sorted(path.rglob("*.py")))
            else:
                files.append(path)
        return sorted(set(files))
    files = []
    for tree_name in ("src", "tests"):
        tree = root / tree_name
        if tree.is_dir():
            files.extend(tree.rglob("*.py"))
    return sorted(files)


def parse_tree(
    root: Path,
    paths: list[Path] | None = None,
    cache_dir: Path | None = None,
) -> tuple[list[ParsedModule], list[tuple[Path, SyntaxError]]]:
    """Parse the whole tree; syntax failures are reported, not raised."""
    modules: list[ParsedModule] = []
    failures: list[tuple[Path, SyntaxError]] = []
    for path in discover_files(root, paths):
        try:
            modules.append(parse_module(path, root, cache_dir))
        except SyntaxError as error:
            failures.append((path, error))
    return modules, failures
