"""Whole-program view over one parsed tree.

Built once per lint run from the ``ParsedModule``s under ``src/``:

* a **module map** — file path ↔ dotted module name,
* an **import graph** whose edges remember whether each import executes at
  module load (top-level), lazily inside a function, or never
  (``TYPE_CHECKING``-only),
* a **symbol table** of classes, methods and top-level functions keyed by
  qualified name (``repro.serve.pool.WorkerHandle.call``),
* an approximate **call graph**: call targets resolve through imports,
  ``self``, annotated parameters, annotated/constructed locals and
  class attribute types.

Resolution is deliberately best-effort — a call the resolver cannot place
is simply absent from the graph — but every edge it *does* produce
corresponds to a real possible call, which is the soundness the
whole-program rules (layer contract, interprocedural taint, lock
ordering) need.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis import layers
from repro.analysis.walker import ParsedModule


def module_name_for(rel_path: str) -> str | None:
    """``src/repro/api/session.py`` -> ``repro.api.session``."""
    if not rel_path.startswith("src/") or not rel_path.endswith(".py"):
        return None
    parts = rel_path[len("src/") : -len(".py")].split("/")
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else None


def chain_of(node: ast.AST) -> list[str] | None:
    """``a.b.c`` (Name root plus attribute hops) -> ``["a", "b", "c"]``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


@dataclass(frozen=True)
class ImportEdge:
    """One ``repro``-internal import, located and classified."""

    importer: str
    target: str
    line: int
    top_level: bool
    type_checking: bool


@dataclass
class FunctionInfo:
    """One top-level function or method."""

    qualname: str
    module: str
    #: owning class qualname; None for module-level functions
    cls: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: parameter name -> class qualname, from annotations the resolver placed
    param_types: dict[str, str] = field(default_factory=dict)
    #: class qualname the return annotation names, when it names one
    return_class: str | None = None


@dataclass
class ClassInfo:
    qualname: str
    module: str
    node: ast.ClassDef
    #: resolved base qualnames where in-program, bare names otherwise
    bases: tuple[str, ...] = ()
    #: method name -> function qualname
    methods: dict[str, str] = field(default_factory=dict)
    #: ``self.<attr>`` -> class qualname (from ``__init__`` construction
    #: sites and annotated assignments)
    attr_types: dict[str, str] = field(default_factory=dict)


#: env binding kinds: a dotted module, or a class/function symbol
_MODULE = "module"
_SYMBOL = "symbol"


class Program:
    """The project-wide symbol table, import graph and call graph."""

    def __init__(self, root: Path, modules: list[ParsedModule]) -> None:
        self.root = root
        self.modules: dict[str, ParsedModule] = {}
        self.module_names: dict[str, str] = {}  # rel_path -> module name
        self.import_edges: list[ImportEdge] = []
        self.classes: dict[str, ClassInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        #: id(ast.Call) -> resolved callee function qualname
        self._call_targets: dict[int, str] = {}
        self._env: dict[str, dict[str, tuple[str, str]]] = {}

        for module in modules:
            name = module_name_for(module.rel_path)
            if name is None or name.split(".")[0] != "repro":
                continue
            self.modules[name] = module
            self.module_names[module.rel_path] = name
        for name in self.modules:
            self._collect_symbols(name)
        for name in self.modules:
            self._collect_imports(name)
        for info in self.classes.values():
            self._resolve_class(info)
        for info in self.functions.values():
            self._resolve_signature(info)
        for info in self.classes.values():
            self._collect_attr_types(info)
        for info in self.functions.values():
            self._resolve_calls(info)

    # ------------------------------------------------------------------
    # construction passes
    # ------------------------------------------------------------------
    def _collect_symbols(self, name: str) -> None:
        module = self.modules[name]
        env: dict[str, tuple[str, str]] = {}
        for statement in module.tree.body:
            if isinstance(statement, ast.ClassDef):
                qualname = f"{name}.{statement.name}"
                info = ClassInfo(qualname=qualname, module=name, node=statement)
                for child in statement.body:
                    if isinstance(
                        child, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        method_qual = f"{qualname}.{child.name}"
                        info.methods[child.name] = method_qual
                        self.functions[method_qual] = FunctionInfo(
                            qualname=method_qual,
                            module=name,
                            cls=qualname,
                            node=child,
                        )
                self.classes[qualname] = info
                env[statement.name] = (_SYMBOL, qualname)
            elif isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{name}.{statement.name}"
                self.functions[qualname] = FunctionInfo(
                    qualname=qualname, module=name, cls=None, node=statement
                )
                env[statement.name] = (_SYMBOL, qualname)
        self._env[name] = env

    def _collect_imports(self, name: str) -> None:
        module = self.modules[name]
        env = self._env[name]
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            top_level = module.enclosing_function(node) is None
            type_checking = self._under_type_checking(module, node)
            if isinstance(node, ast.Import):
                for alias in node.names:
                    target = self._module_or_prefix(alias.name)
                    if target is not None:
                        self.import_edges.append(
                            ImportEdge(name, target, node.lineno,
                                       top_level, type_checking)
                        )
                    if alias.asname and alias.name in self.modules:
                        env.setdefault(alias.asname, (_MODULE, alias.name))
                    elif alias.asname is None:
                        root_pkg = alias.name.split(".")[0]
                        if root_pkg in self.modules:
                            env.setdefault(root_pkg, (_MODULE, root_pkg))
            else:
                base = self._import_from_base(name, node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    submodule = f"{base}.{alias.name}"
                    if submodule in self.modules:
                        env.setdefault(bound, (_MODULE, submodule))
                        self.import_edges.append(
                            ImportEdge(name, submodule, node.lineno,
                                       top_level, type_checking)
                        )
                    elif base in self.modules:
                        env.setdefault(
                            bound, (_SYMBOL, f"{base}.{alias.name}")
                        )
                        self.import_edges.append(
                            ImportEdge(name, base, node.lineno,
                                       top_level, type_checking)
                        )

    def _import_from_base(
        self, importer: str, node: ast.ImportFrom
    ) -> str | None:
        if node.level == 0:
            return node.module
        # relative import: ascend from the importer's package
        parts = importer.split(".")
        if self.modules[importer].rel_path.endswith("__init__.py"):
            parts = parts[: len(parts) - (node.level - 1)]
        else:
            parts = parts[: len(parts) - node.level]
        if not parts:
            return None
        if node.module:
            parts = parts + node.module.split(".")
        return ".".join(parts)

    def _module_or_prefix(self, dotted: str) -> str | None:
        """The longest prefix of ``dotted`` that is an in-program module."""
        parts = dotted.split(".")
        for k in range(len(parts), 0, -1):
            prefix = ".".join(parts[:k])
            if prefix in self.modules:
                return prefix
        return None

    def _under_type_checking(
        self, module: ParsedModule, node: ast.AST
    ) -> bool:
        for ancestor in module.ancestors(node):
            if isinstance(ancestor, ast.If):
                test = ancestor.test
                chain = chain_of(test) if not isinstance(test, ast.Constant) else None
                if chain and chain[-1] == "TYPE_CHECKING":
                    return True
        return False

    # ------------------------------------------------------------------
    # name resolution
    # ------------------------------------------------------------------
    def resolve_chain(
        self, module: str, parts: list[str]
    ) -> tuple[str, str] | None:
        """``(kind, dotted)`` for a name chain seen from ``module``.

        Kind is ``"module"`` or ``"symbol"``; symbols are class, method or
        function qualnames.  Tries the chain as a fully-dotted module path
        first (``repro.serve.bundle.load_bundle`` works without knowing
        the import that bound it), then the module's import/def bindings.
        """
        if not parts:
            return None
        for k in range(len(parts), 0, -1):
            prefix = ".".join(parts[:k])
            if prefix in self.modules:
                return self._descend_module(prefix, parts[k:])
        binding = self._env.get(module, {}).get(parts[0])
        if binding is None:
            return None
        kind, target = binding
        if kind == _MODULE:
            return self._descend_module(target, parts[1:])
        return self._descend_symbol(target, parts[1:])

    def _descend_module(
        self, module: str, rest: list[str]
    ) -> tuple[str, str] | None:
        if not rest:
            return (_MODULE, module)
        submodule = f"{module}.{rest[0]}"
        if submodule in self.modules:
            return self._descend_module(submodule, rest[1:])
        binding = self._env.get(module, {}).get(rest[0])
        if binding is not None and binding[0] == _MODULE:
            return self._descend_module(binding[1], rest[1:])
        return self._descend_symbol(f"{module}.{rest[0]}", rest[1:])

    def _descend_symbol(
        self, qualname: str, rest: list[str]
    ) -> tuple[str, str] | None:
        if not rest:
            if qualname in self.classes or qualname in self.functions:
                return (_SYMBOL, qualname)
            # re-exported name we did not index (constant, alias): unknown
            return None
        if qualname in self.classes:
            method = self.method_on(qualname, rest[0])
            if method is not None and len(rest) == 1:
                return (_SYMBOL, method)
        return None

    def resolve_symbol(self, module: str, node: ast.AST) -> str | None:
        """The class/function qualname a Name/Attribute expression names."""
        parts = chain_of(node)
        if parts is None:
            return None
        resolved = self.resolve_chain(module, parts)
        if resolved is not None and resolved[0] == _SYMBOL:
            return resolved[1]
        return None

    def method_on(self, class_qualname: str, name: str) -> str | None:
        """Method lookup walking in-program base classes breadth-first."""
        seen: set[str] = set()
        queue = [class_qualname]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            if name in info.methods:
                return info.methods[name]
            queue.extend(base for base in info.bases if base in self.classes)
        return None

    def is_subclass_of(self, class_qualname: str, ancestors: set[str]) -> bool:
        """Does the class's base chain (bare names included) hit the set?"""
        seen: set[str] = set()
        queue = [class_qualname]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            if current in ancestors:
                return True
            info = self.classes.get(current)
            if info is not None:
                queue.extend(info.bases)
        return False

    def _annotation_class(
        self, module: str, annotation: ast.AST | None
    ) -> str | None:
        """The in-program class an annotation names, unwrapping
        ``Optional[X]`` / ``X | None`` / string annotations."""
        if annotation is None:
            return None
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            try:
                annotation = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(annotation, ast.Subscript):
            base = chain_of(annotation.value)
            if base and base[-1] == "Optional":
                return self._annotation_class(module, annotation.slice)
            return None
        if isinstance(annotation, ast.BinOp) and isinstance(
            annotation.op, ast.BitOr
        ):
            for side in (annotation.left, annotation.right):
                if isinstance(side, ast.Constant) and side.value is None:
                    continue
                resolved = self._annotation_class(module, side)
                if resolved is not None:
                    return resolved
            return None
        resolved = self.resolve_symbol(module, annotation)
        if resolved is not None and resolved in self.classes:
            return resolved
        return None

    # ------------------------------------------------------------------
    # type-ish passes
    # ------------------------------------------------------------------
    def _resolve_class(self, info: ClassInfo) -> None:
        bases: list[str] = []
        for base in info.node.bases:
            parts = chain_of(base)
            if parts is None:
                continue
            resolved = self.resolve_chain(info.module, parts)
            if resolved is not None and resolved[0] == _SYMBOL:
                bases.append(resolved[1])
            else:
                bases.append(parts[-1])
        info.bases = tuple(bases)

    def _resolve_signature(self, info: FunctionInfo) -> None:
        arguments = info.node.args
        for arg in [
            *arguments.posonlyargs,
            *arguments.args,
            *arguments.kwonlyargs,
        ]:
            resolved = self._annotation_class(info.module, arg.annotation)
            if resolved is not None:
                info.param_types[arg.arg] = resolved
        info.return_class = self._annotation_class(
            info.module, info.node.returns
        )
        if info.cls is not None and info.node.name == "__init__":
            info.return_class = info.cls

    def _collect_attr_types(self, info: ClassInfo) -> None:
        for node in ast.walk(info.node):
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target = node.target
                resolved = self._annotation_class(info.module, node.annotation)
                if (
                    resolved is not None
                    and isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    info.attr_types.setdefault(target.attr, resolved)
                continue
            if (
                target is None
                or not isinstance(target, ast.Attribute)
                or not isinstance(target.value, ast.Name)
                or target.value.id != "self"
                or not isinstance(value, ast.Call)
            ):
                continue
            constructed = self._value_class(info.module, value, {})
            if constructed is not None:
                info.attr_types.setdefault(target.attr, constructed)

    def _value_class(
        self, module: str, value: ast.Call, local_types: dict[str, str]
    ) -> str | None:
        """The class an expression's value is an instance of, if knowable."""
        resolved = self._resolve_call_target(
            module, None, value, local_types
        )
        if resolved is None:
            return None
        if resolved in self.classes:
            return resolved
        function = self.functions.get(resolved)
        if function is not None:
            return function.return_class
        return None

    # ------------------------------------------------------------------
    # call graph
    # ------------------------------------------------------------------
    def _local_types(self, info: FunctionInfo) -> dict[str, str]:
        local_types = dict(info.param_types)
        if info.cls is not None:
            local_types.setdefault("self", info.cls)
        for node in ast.walk(info.node):
            if isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                resolved = self._annotation_class(info.module, node.annotation)
                if resolved is not None:
                    local_types[node.target.id] = resolved
            elif (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
            ):
                constructed = self._value_class(
                    info.module, node.value, local_types
                )
                if constructed is not None:
                    local_types[node.targets[0].id] = constructed
        return local_types

    def _resolve_call_target(
        self,
        module: str,
        cls: str | None,
        call: ast.Call,
        local_types: dict[str, str],
    ) -> str | None:
        """The qualname (class or function) a call invokes, or None."""
        parts = chain_of(call.func)
        if parts is None:
            return None
        root = parts[0]
        # object-typed roots: self / annotated params / constructed locals
        if root in local_types and len(parts) >= 2:
            owner: str | None = local_types[root]
            for attr in parts[1:-1]:
                owner = self.classes[owner].attr_types.get(attr) if (
                    owner in self.classes
                ) else None
                if owner is None:
                    return None
            if owner is not None and owner in self.classes:
                return self.method_on(owner, parts[-1])
            return None
        resolved = self.resolve_chain(module, parts)
        if resolved is not None and resolved[0] == _SYMBOL:
            return resolved[1]
        return None

    def _resolve_calls(self, info: FunctionInfo) -> None:
        local_types = self._local_types(info)
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            resolved = self._resolve_call_target(
                info.module, info.cls, node, local_types
            )
            if resolved is None:
                continue
            if resolved in self.classes:
                # calling a class is calling its constructor
                resolved = self.classes[resolved].methods.get(
                    "__init__", resolved
                )
            self._call_targets[id(node)] = resolved

    def callee_of(self, call: ast.Call) -> str | None:
        """The resolved target of one call node (function/class qualname)."""
        return self._call_targets.get(id(call))

    def calls_in(
        self, info: FunctionInfo
    ) -> list[tuple[ast.Call, str | None]]:
        return [
            (node, self._call_targets.get(id(node)))
            for node in ast.walk(info.node)
            if isinstance(node, ast.Call)
        ]

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        """The CI graph artifact: modules, import edges, call edges."""
        calls = []
        for info in sorted(self.functions.values(), key=lambda f: f.qualname):
            for node, callee in self.calls_in(info):
                if callee is not None:
                    calls.append(
                        {
                            "from": info.qualname,
                            "to": callee,
                            "line": node.lineno,
                        }
                    )
        return {
            "version": 1,
            "modules": [
                {
                    "name": name,
                    "path": self.modules[name].rel_path,
                    "layer": layers.layer_name(name),
                }
                for name in sorted(self.modules)
            ],
            "imports": [
                {
                    "from": edge.importer,
                    "to": edge.target,
                    "line": edge.line,
                    "top_level": edge.top_level,
                    "type_checking": edge.type_checking,
                }
                for edge in sorted(
                    set(self.import_edges),
                    key=lambda e: (e.importer, e.target, e.line),
                )
            ],
            "calls": calls,
        }


def build_program(root: Path, modules: list[ParsedModule]) -> Program:
    """The whole-program view over the ``src/`` subset of ``modules``."""
    return Program(root, [m for m in modules if m.rel_path.startswith("src/")])
