"""Orchestration: walk the tree, run every rule, apply suppressions,
diff against the baseline, render.  ``repro lint`` and
``python -m repro.analysis`` both land here.

Two rule shapes run side by side: per-module rules (``check(module)``)
and whole-program rules (``check_program(program)``), the latter over the
import/call graph :func:`repro.analysis.program.build_program` builds from
the same parsed modules.  Program-rule findings are routed back to their
file so inline suppressions and the baseline treat them like any other.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    BaselineKey,
    load_baseline,
    split_findings,
    write_baseline,
)
from repro.analysis.program import Program, build_program
from repro.analysis.registry import META_RULES, Finding, all_rules
from repro.analysis.walker import (
    DEFAULT_CACHE_DIRNAME,
    ParsedModule,
    Suppression,
    parse_tree,
)


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    old_findings: list[Finding] = field(default_factory=list)
    new_findings: list[Finding] = field(default_factory=list)
    stale_baseline: Counter[BaselineKey] = field(default_factory=Counter)
    suppressed: list[Finding] = field(default_factory=list)
    n_files: int = 0
    seconds: float = 0.0
    #: the whole-program view (import/call graph) the run was checked against
    program: Program | None = None

    @property
    def suppressed_count(self) -> int:
        return len(self.suppressed)

    @property
    def ok(self) -> bool:
        """Gate: no findings beyond the baseline, and no stale baseline."""
        return not self.new_findings and not self.stale_baseline


def _apply_suppressions(
    module: ParsedModule, findings: list[Finding]
) -> tuple[list[Finding], list[Finding]]:
    """``(kept, suppressed)`` after matching inline ignores by line+rule."""
    kept: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in findings:
        matched: Suppression | None = None
        for suppression in module.suppressions_for(finding.line):
            if finding.rule_id in suppression.rule_ids:
                matched = suppression
                break
        if matched is None:
            kept.append(finding)
        else:
            matched.used = True
            suppressed.append(finding)
    return kept, suppressed


def _meta_findings(module: ParsedModule) -> list[Finding]:
    """Suppression hygiene: justifications are mandatory, dead ignores go."""
    findings: list[Finding] = []
    for suppression in module.suppressions:
        if not suppression.justified:
            severity, _ = META_RULES["bad-suppression"]
            findings.append(
                Finding(
                    rel_path=module.rel_path,
                    line=suppression.line,
                    col=0,
                    rule_id="bad-suppression",
                    severity=severity,
                    message=(
                        "suppression without a justification — write "
                        "`# reprolint: ignore["
                        + ", ".join(suppression.rule_ids)
                        + "]: <why this is sound>`"
                    ),
                ).with_context(module)
            )
        if not suppression.used:
            severity, _ = META_RULES["unused-suppression"]
            findings.append(
                Finding(
                    rel_path=module.rel_path,
                    line=suppression.line,
                    col=0,
                    rule_id="unused-suppression",
                    severity=severity,
                    message=(
                        f"no {', '.join(suppression.rule_ids)} finding on "
                        f"line {suppression.applies_to} — delete the stale "
                        f"suppression"
                    ),
                ).with_context(module)
            )
    return findings


def run_lint(
    root: Path,
    paths: list[Path] | None = None,
    cache_dir: Path | None = None,
) -> LintResult:
    """Run every registered rule over the tree rooted at ``root``."""
    start = time.perf_counter()
    result = LintResult()
    modules, failures = parse_tree(root, paths, cache_dir)
    result.n_files = len(modules)
    rules = all_rules()
    for path, error in failures:
        rel = path.relative_to(root).as_posix() if path.is_relative_to(root) else str(path)
        result.findings.append(
            Finding(
                rel_path=rel,
                line=error.lineno or 1,
                col=(error.offset or 1) - 1,
                rule_id="syntax-error",
                severity="error",
                message=f"file does not parse: {error.msg}",
            )
        )

    by_rel_path = {module.rel_path: module for module in modules}
    per_file: dict[str, list[Finding]] = {rel: [] for rel in by_rel_path}
    for module in modules:
        for rule in rules:
            if not hasattr(rule, "check"):
                continue
            if not rule.applies_to(module.rel_path):
                continue
            per_file[module.rel_path].extend(rule.check(module))

    program = build_program(root, modules)
    result.program = program
    for rule in rules:
        if not hasattr(rule, "check_program"):
            continue
        for finding in rule.check_program(program):
            module = by_rel_path.get(finding.rel_path)
            if module is None:
                result.findings.append(finding)
                continue
            per_file[finding.rel_path].append(finding.with_context(module))

    for module in modules:
        kept, suppressed = _apply_suppressions(
            module, sorted(per_file[module.rel_path])
        )
        result.suppressed.extend(suppressed)
        kept.extend(_meta_findings(module))
        result.findings.extend(kept)
    result.findings.sort()
    result.seconds = time.perf_counter() - start
    return result


def changed_files(root: Path, base_ref: str) -> set[str]:
    """Repo-relative paths changed vs ``base_ref``, plus untracked files."""
    changed: set[str] = set()
    for args in (
        ["git", "diff", "--name-only", base_ref],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        completed = subprocess.run(
            args, cwd=root, capture_output=True, text=True
        )
        if completed.returncode != 0:
            raise RuntimeError(
                f"{' '.join(args)} failed: {completed.stderr.strip()}"
            )
        changed.update(
            line.strip()
            for line in completed.stdout.splitlines()
            if line.strip()
        )
    return changed


def _restrict(result: LintResult, rel_paths: set[str]) -> LintResult:
    """The same run, reported only for ``rel_paths`` (``--changed-only``)."""
    result.findings = [f for f in result.findings if f.rel_path in rel_paths]
    result.old_findings = [
        f for f in result.old_findings if f.rel_path in rel_paths
    ]
    result.new_findings = [
        f for f in result.new_findings if f.rel_path in rel_paths
    ]
    result.suppressed = [
        f for f in result.suppressed if f.rel_path in rel_paths
    ]
    result.stale_baseline = Counter(
        {
            key: count
            for key, count in result.stale_baseline.items()
            if key[1] in rel_paths
        }
    )
    return result


def lint_with_baseline(
    root: Path,
    paths: list[Path] | None = None,
    baseline_path: Path | None = None,
    cache_dir: Path | None = None,
) -> LintResult:
    """:func:`run_lint` plus the baseline diff (the ratchet)."""
    result = run_lint(root, paths, cache_dir)
    if baseline_path is None:
        baseline_path = root / DEFAULT_BASELINE_NAME
    baseline = load_baseline(baseline_path)
    if paths:
        # a partial run cannot judge staleness of entries for unseen files
        scanned = {finding.rel_path for finding in result.findings}
        baseline = Counter(
            {key: count for key, count in baseline.items() if key[1] in scanned}
        )
        old, new, _stale = split_findings(result.findings, baseline)
        stale: Counter[BaselineKey] = Counter()
    else:
        old, new, stale = split_findings(result.findings, baseline)
    result.old_findings = old
    result.new_findings = new
    result.stale_baseline = stale
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "project-specific static analysis: determinism taint, layer "
            "contract, lock ordering, exception contract, config drift, "
            "numpy contracts, wire-schema strictness"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: src/ and tests/)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=Path.cwd(),
        help="repository root (default: current directory)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (json is the CI artifact shape)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE_NAME})",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings as the new baseline and exit 0 "
        "(the ratchet: run after fixing findings, review the shrink)",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help="analyze the whole program but report findings only for "
        "files changed vs --base-ref (plus untracked files)",
    )
    parser.add_argument(
        "--base-ref",
        default="HEAD",
        help="git ref --changed-only diffs against (default: HEAD)",
    )
    parser.add_argument(
        "--dump-graph",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the whole-program import/call graph as JSON (the CI "
        "artifact) and continue",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help=f"skip the on-disk AST cache (<root>/{DEFAULT_CACHE_DIRNAME})",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  [{rule.severity}]")
            print(f"    {rule.description}")
        for rule_id, (severity, description) in sorted(META_RULES.items()):
            print(f"{rule_id}  [{severity}]")
            print(f"    {description}")
        return 0

    root = args.root.resolve()
    baseline_path = (
        args.baseline if args.baseline is not None
        else root / DEFAULT_BASELINE_NAME
    )
    paths = [path.resolve() for path in args.paths] or None
    cache_dir = None if args.no_cache else root / DEFAULT_CACHE_DIRNAME

    if args.write_baseline:
        result = run_lint(root, paths, cache_dir)
        write_baseline(baseline_path, result.findings)
        print(
            f"baseline written to {baseline_path} "
            f"({len(result.findings)} finding(s))",
            file=sys.stderr,
        )
        return 0

    result = lint_with_baseline(root, paths, baseline_path, cache_dir)
    if args.dump_graph is not None and result.program is not None:
        args.dump_graph.parent.mkdir(parents=True, exist_ok=True)
        args.dump_graph.write_text(
            json.dumps(result.program.to_json(), indent=1) + "\n",
            encoding="utf-8",
        )
    if args.changed_only:
        try:
            changed = changed_files(root, args.base_ref)
        except RuntimeError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        result = _restrict(result, changed)
    from repro.analysis.report import render_json, render_text

    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result))
    return 0 if result.ok else 1
