"""The pluggable rule registry and the :class:`Finding` record.

A rule is a class with ``rule_id`` / ``severity`` / ``description`` class
attributes, an ``applies_to(rel_path)`` scope filter and a
``check(module)`` generator over :class:`Finding`.  Registration is a
decorator, so adding a rule family is one module with ``@register`` classes
plus an import in :func:`all_rules`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Iterable, Protocol, Type, Union

from repro.analysis.walker import ParsedModule

if TYPE_CHECKING:
    from repro.analysis.program import Program

SEVERITIES = ("error", "warning")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    rel_path: str
    line: int
    col: int
    rule_id: str
    severity: str
    message: str
    #: the stripped source line — the baseline matches on this, not the line
    #: number, so unrelated edits above a finding don't churn the baseline
    context: str = ""

    def key(self) -> tuple[str, str, str]:
        """The baseline identity: stable under line-number drift."""
        return (self.rule_id, self.rel_path, self.context)

    def to_json(self) -> dict:
        return {
            "rule": self.rule_id,
            "severity": self.severity,
            "path": self.rel_path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "context": self.context,
        }

    def with_context(self, module: ParsedModule) -> "Finding":
        if self.context:
            return self
        return replace(self, context=module.line_text(self.line))


class Rule(Protocol):
    """A per-module rule (see module docstring)."""

    rule_id: str
    severity: str
    description: str

    def applies_to(self, rel_path: str) -> bool: ...

    def check(self, module: ParsedModule) -> Iterable[Finding]: ...


class ProgramRule(Protocol):
    """A whole-program rule: sees the import/call graph, not one module."""

    rule_id: str
    severity: str
    description: str

    def check_program(self, program: "Program") -> Iterable[Finding]: ...


AnyRule = Union[Rule, ProgramRule]

_REGISTRY: dict[str, Type] = {}

#: runner-emitted meta rules: not in the registry, but valid suppression /
#: baseline targets and listed in the rule table
META_RULES: dict[str, tuple[str, str]] = {
    "bad-suppression": (
        "error",
        "a reprolint suppression must carry a justification after the "
        "rule list: `# reprolint: ignore[rule-id]: why this is sound`",
    ),
    "unused-suppression": (
        "warning",
        "a reprolint suppression that no finding matched — delete it "
        "(the violation it excused is gone)",
    ),
}


def register(cls: Type) -> Type:
    rule_id = cls.rule_id
    if rule_id in _REGISTRY or rule_id in META_RULES:
        raise ValueError(f"duplicate rule id: {rule_id}")
    if cls.severity not in SEVERITIES:
        raise ValueError(f"{rule_id}: invalid severity {cls.severity!r}")
    _REGISTRY[rule_id] = cls
    return cls


def all_rules() -> list[AnyRule]:
    """One instance of every registered rule, in stable rule-id order."""
    # importing the rule modules populates the registry
    from repro.analysis.rules import (  # noqa: F401
        config_knobs,
        determinism,
        exc_contract,
        layering,
        lock_order,
        locks,
        numpy_contracts,
        taint,
        wire_schema,
    )

    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def known_rule_ids() -> set[str]:
    all_rules()
    return set(_REGISTRY) | set(META_RULES)
