"""The declared layer contract of ``src/repro`` — the single source of truth.

The package tiers, bottom to top.  A module may import from its own tier
or any tier **below** it; an import that reaches *up* couples a foundation
to a frontend and is an ``arch-layering`` violation:

* **foundation** — the paper's domain: catalog, text measures, factor
  graphs, table model, vectorized engines.  Imports nothing above itself.
* **orchestration** — corpus-scale composition of the foundation:
  pipelines, query processors, evaluation harnesses.
* **api** — the one typed surface (``ReproSession``, request/response
  types, the error taxonomy) every frontend speaks through.
* **frontends** — process-level shells: the CLI, the HTTP serving tier,
  and the static-analysis tool itself.

``docs/ARCHITECTURE.md`` mirrors this table for humans;
``tools/check_docs.py layers`` fails the docs CI job when the two drift.
The ``arch-layering`` rule (:mod:`repro.analysis.rules.layering`) enforces
it over the real import graph.
"""

from __future__ import annotations

#: bottom-to-top tiers: ``(tier name, packages directly under repro/)``
LAYERS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("foundation", ("catalog", "core", "graph", "tables", "text")),
    ("orchestration", ("eval", "pipeline", "search")),
    ("api", ("api",)),
    ("frontends", ("analysis", "cli", "serve")),
)


def layer_index(module: str) -> int | None:
    """Tier of a dotted module name (``None`` for non-``repro`` modules).

    The root package and ``__main__`` re-export the API surface for
    callers, so they sit in the top tier; so does any package not yet
    declared above (permissive default — the docs check is what forces a
    new package to be placed deliberately).
    """
    parts = module.split(".")
    if parts[0] != "repro":
        return None
    head = parts[1] if len(parts) > 1 else ""
    for index, (_name, packages) in enumerate(LAYERS):
        if head in packages:
            return index
    return len(LAYERS) - 1


def layer_name(module: str) -> str | None:
    index = layer_index(module)
    return None if index is None else LAYERS[index][0]


def contract_lines() -> list[str]:
    """The canonical one-line-per-tier rendering (bottom first).

    ``docs/ARCHITECTURE.md`` must contain each of these lines verbatim —
    that is the machine-checked half of the "mirrored in the docs"
    promise (see ``tools/check_docs.py layers``).
    """
    return [
        f"{name}: {', '.join(packages)}" for name, packages in LAYERS
    ]
