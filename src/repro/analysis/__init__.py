"""``reprolint`` — project-specific static analysis for the repro codebase.

The system's headline guarantee — byte-identical annotations across the
scalar, batched and fused engines — plus the serving tier's shared-state
concurrency rest on invariants no generic linter checks:

* **determinism** — no unseeded randomness, no wall clock flowing into
  cache keys or planner signatures, no unordered iteration in the planning
  / fused hot paths (:mod:`repro.analysis.rules.determinism`),
* **lock discipline** — attributes written under a class's
  ``threading.Lock`` must never be touched outside one
  (:mod:`repro.analysis.rules.locks`),
* **numpy contracts** — pooled scratch buffers must not escape their
  borrower, and engine-module array allocation must pin ``dtype=``
  (:mod:`repro.analysis.rules.numpy_contracts`),
* **wire-schema strictness** — every dataclass field of a wire type must
  round-trip through both ``to_json`` and ``from_json``
  (:mod:`repro.analysis.rules.wire_schema`).

Run it as ``repro lint`` or ``python -m repro.analysis``.  Findings are
suppressible inline with a *justified* comment::

    self._index  # reprolint: ignore[lock-unguarded-attr]: read is atomic

and pre-existing findings live in a committed JSON baseline
(``reprolint_baseline.json``) that may only ever shrink — CI fails on any
finding not already in it.  See README "Static analysis".
"""

from repro.analysis.registry import Finding, Rule, all_rules
from repro.analysis.runner import LintResult, main, run_lint

__all__ = [
    "Finding",
    "Rule",
    "all_rules",
    "LintResult",
    "run_lint",
    "main",
]
