"""Human and machine-readable rendering of one lint run."""

from __future__ import annotations

import json
from collections import Counter
from typing import TYPE_CHECKING

from repro.analysis.registry import Finding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.runner import LintResult


def _format_finding(finding: Finding, marker: str = "") -> str:
    location = f"{finding.rel_path}:{finding.line}:{finding.col + 1}"
    tag = f" {marker}" if marker else ""
    return (
        f"{location}: {finding.severity}[{finding.rule_id}]{tag} "
        f"{finding.message}"
    )


def render_text(result: "LintResult") -> str:
    """The terminal report: new findings loudly, baselined ones quietly."""
    lines: list[str] = []
    for finding in result.new_findings:
        lines.append(_format_finding(finding, marker="(new)"))
    for finding in result.old_findings:
        lines.append(_format_finding(finding, marker="(baselined)"))
    if result.stale_baseline:
        lines.append("")
        lines.append(
            f"{sum(result.stale_baseline.values())} stale baseline "
            f"entr{'y' if sum(result.stale_baseline.values()) == 1 else 'ies'} "
            f"(fixed findings still listed in the baseline — run "
            f"`repro lint --write-baseline` to ratchet down):"
        )
        for (rule, path, context), count in sorted(result.stale_baseline.items()):
            lines.append(f"  {path} [{rule}] x{count}: {context}")
    lines.append("")
    by_rule = Counter(finding.rule_id for finding in result.findings)
    summary = ", ".join(
        f"{rule}={count}" for rule, count in sorted(by_rule.items())
    )
    lines.append(
        f"reprolint: {len(result.findings)} finding(s) "
        f"({len(result.new_findings)} new, {len(result.old_findings)} "
        f"baselined, {result.suppressed_count} suppressed) across "
        f"{result.n_files} files in {result.seconds:.2f}s"
        + (f"  [{summary}]" if summary else "")
    )
    if result.new_findings:
        lines.append(
            "reprolint: FAIL — new findings above the committed baseline"
        )
    elif result.stale_baseline:
        lines.append(
            "reprolint: FAIL — baseline is stale; ratchet it down"
        )
    else:
        lines.append("reprolint: OK")
    return "\n".join(lines)


def render_json(result: "LintResult") -> str:
    """Machine-readable report (the CI artifact)."""
    document = {
        "version": 1,
        "n_files": result.n_files,
        "seconds": round(result.seconds, 3),
        "counts": {
            "total": len(result.findings),
            "new": len(result.new_findings),
            "baselined": len(result.old_findings),
            "suppressed": result.suppressed_count,
            "stale_baseline": sum(result.stale_baseline.values()),
        },
        "findings": [finding.to_json() for finding in result.findings],
        "new_findings": [
            finding.to_json() for finding in result.new_findings
        ],
        "stale_baseline": [
            {"rule": rule, "path": path, "context": context, "count": count}
            for (rule, path, context), count in sorted(
                result.stale_baseline.items()
            )
        ],
    }
    return json.dumps(document, indent=1)
