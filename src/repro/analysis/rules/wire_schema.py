"""Wire-schema strictness: every field round-trips.

The API layer's contract is ``T.from_json(T.to_json(x)) == x`` for every
wire type.  The hypothesis round-trip tests catch a *value* that fails to
survive, but a field that is silently dropped by **both** sides — or added
to the dataclass and wired into only one side — round-trips vacuously and
ships a wire hole.  This rule closes it structurally: for every
``@dataclass`` that defines both ``to_json`` and ``from_json``, each
declared field name must appear in each method body (as ``self.<field>``,
a ``"<field>"`` string key, or a ``<field>=`` keyword).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.registry import Finding, register
from repro.analysis.walker import ParsedModule


def _is_dataclass(cls: ast.ClassDef) -> bool:
    for decorator in cls.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
    return False


def _is_dynamic(body: list[ast.stmt]) -> bool:
    """True when the method en/decodes fields dynamically.

    A body that iterates ``dataclasses.fields(...)`` / calls ``asdict`` or
    constructs via ``cls(**kwargs)`` is field-complete by construction —
    every declared field flows through without its name appearing.
    """
    for statement in body:
        for node in ast.walk(statement):
            if isinstance(node, ast.Call):
                target = node.func
                name = (
                    target.attr
                    if isinstance(target, ast.Attribute)
                    else target.id if isinstance(target, ast.Name) else ""
                )
                if name in ("fields", "asdict", "astuple"):
                    return True
                if any(keyword.arg is None for keyword in node.keywords):
                    return True  # f(**kwargs): all fields pass through
    return False


def _names_in(body: list[ast.stmt]) -> set[str]:
    """Every identifier a field could surface as inside a method body."""
    seen: set[str] = set()
    for statement in body:
        for node in ast.walk(statement):
            if isinstance(node, ast.Attribute):
                seen.add(node.attr)
            elif isinstance(node, ast.Constant) and isinstance(node.value, str):
                seen.add(node.value)
            elif isinstance(node, ast.keyword) and node.arg is not None:
                seen.add(node.arg)
            elif isinstance(node, ast.Name):
                seen.add(node.id)
    return seen


@register
class WireRoundTripRule:
    rule_id = "wire-roundtrip-field"
    severity = "error"
    description = (
        "a dataclass field of a wire type (a @dataclass defining both "
        "to_json and from_json) must appear in both method bodies, or the "
        "field silently falls out of the wire contract"
    )

    def applies_to(self, rel_path: str) -> bool:
        return rel_path.startswith("src/repro/")

    def check(self, module: ParsedModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and _is_dataclass(node):
                yield from self._check_class(module, node)

    def _check_class(
        self, module: ParsedModule, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        methods = {
            statement.name: statement
            for statement in cls.body
            if isinstance(statement, ast.FunctionDef)
        }
        to_json = methods.get("to_json")
        from_json = methods.get("from_json")
        if to_json is None or from_json is None:
            return
        encoded = None if _is_dynamic(to_json.body) else _names_in(to_json.body)
        decoded = (
            None if _is_dynamic(from_json.body) else _names_in(from_json.body)
        )
        if encoded is None and decoded is None:
            return
        for statement in cls.body:
            if not isinstance(statement, ast.AnnAssign):
                continue
            target = statement.target
            if not isinstance(target, ast.Name) or target.id.startswith("_"):
                continue
            field_name = target.id
            missing = [
                side
                for side, seen in (("to_json", encoded), ("from_json", decoded))
                if seen is not None and field_name not in seen
            ]
            if not missing:
                continue
            yield Finding(
                rel_path=module.rel_path,
                line=statement.lineno,
                col=statement.col_offset,
                rule_id=self.rule_id,
                severity=self.severity,
                message=(
                    f"{cls.name}.{field_name} never appears in "
                    f"{' or '.join(missing)} — the field is outside the "
                    f"wire round-trip contract"
                ),
            ).with_context(module)
