"""Lock ordering and hold-and-wait across the serving tier.

Builds, for every class under ``serve/`` and ``api/``, a lock-acquisition
graph whose nodes are ``Class.lock_attr`` pairs.  Edges come from three
places:

* lexical nesting: ``with self._a:`` containing ``with self._b:``,
* explicit acquires under a held lock: ``self._b.acquire()``,
* resolved method calls under a held lock — the callee's (transitively
  computed) acquisition set hangs off every lock held at the call site,
  including calls that cross classes through annotated locals/params.

Two rules read the graph:

* ``lock-order-cycle`` (error) — a cycle means two threads can take the
  same locks in opposite orders: the classic ABBA deadlock.  A self-edge
  on a non-reentrant ``Lock`` is the one-thread special case.
* ``lock-order-hold-wait`` (warning) — a blocking wait (pipe ``recv`` /
  ``poll``, semaphore/queue ``acquire``/``get`` with a timeout, process
  ``join``, ...) executed while holding a lock stalls every thread that
  needs the lock for the full wait.  Sound cases (the blocked-on party
  never takes the lock) are what justified suppressions are for.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field as dataclass_field
from typing import Iterable, Iterator

from repro.analysis.program import FunctionInfo, Program, chain_of
from repro.analysis.registry import Finding, register
from repro.analysis.rules.locks import _is_lock_constructor, _self_attr
from repro.analysis.walker import ParsedModule

#: modules whose classes participate in the lock graph
_SCOPE_PREFIXES = ("src/repro/serve/", "src/repro/api/")

#: method names that block the calling thread
_BLOCKING_ALWAYS = frozenset({"recv", "recv_bytes", "poll", "join", "wait"})
#: block only when called with a timeout/block keyword (else they are
#: usually dict.get / non-blocking acquires we cannot distinguish)
_BLOCKING_WITH_TIMEOUT = frozenset({"get", "acquire"})

_REENTRANT = frozenset({"RLock"})


def _lock_kind(value: ast.expr) -> str | None:
    """``Lock`` / ``RLock`` for a lock-constructor expression."""
    if not _is_lock_constructor(value):
        return None
    func = value.func if isinstance(value, ast.Call) else None
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


LockNode = tuple[str, str]  # (class qualname, lock attr)


def _node_label(node: LockNode) -> str:
    return f"{node[0].split('.')[-1]}.{node[1]}"


@dataclass
class _MethodFacts:
    """Lexically extracted lock behaviour of one method."""

    #: locks taken anywhere in the method body (with-blocks and .acquire())
    acquires: set[LockNode] = dataclass_field(default_factory=set)
    #: (held lock, acquired lock, line) from lexical nesting / acquire calls
    edges: list[tuple[LockNode, LockNode, int]] = dataclass_field(
        default_factory=list
    )
    #: (call node, resolved callee, held locks at the call)
    calls: list[tuple[ast.Call, str | None, tuple[LockNode, ...]]] = (
        dataclass_field(default_factory=list)
    )
    #: human descriptions of direct blocking waits (held or not)
    blocking: set[str] = dataclass_field(default_factory=set)


class _LockGraphBuilder:
    """Shared extraction for both lock rules (built once per program)."""

    def __init__(self, program: Program) -> None:
        self.program = program
        #: lock attr -> Lock/RLock, per scoped class
        self.class_locks: dict[str, dict[str, str]] = {}
        self.method_facts: dict[str, _MethodFacts] = {}
        #: transitive acquisition set per method (fixpoint)
        self.method_acquires: dict[str, set[LockNode]] = {}
        #: transitive blocking descriptions per method (fixpoint)
        self.method_blocks: dict[str, set[str]] = {}
        self._build()

    def _scoped_classes(self) -> list[str]:
        out = []
        for qualname, info in self.program.classes.items():
            rel_path = self.program.modules[info.module].rel_path
            if rel_path.startswith(_SCOPE_PREFIXES):
                out.append(qualname)
        return sorted(out)

    def _build(self) -> None:
        for class_qualname in self._scoped_classes():
            info = self.program.classes[class_qualname]
            locks: dict[str, str] = {}
            for node in ast.walk(info.node):
                if isinstance(node, ast.Assign):
                    kind = _lock_kind(node.value)
                    if kind is None:
                        continue
                    for target in node.targets:
                        attr = _self_attr(target)
                        if attr is not None:
                            locks[attr] = kind
            self.class_locks[class_qualname] = locks
            for method_qual in info.methods.values():
                fn = self.program.functions[method_qual]
                self.method_facts[method_qual] = self._scan_method(fn, locks)
        self._fixpoint()

    # ------------------------------------------------------------------
    # lexical scan
    # ------------------------------------------------------------------
    def _scan_method(
        self, fn: FunctionInfo, locks: dict[str, str]
    ) -> _MethodFacts:
        facts = _MethodFacts()
        assert fn.cls is not None
        self._scan_block(fn, fn.cls, locks, fn.node.body, (), facts)
        return facts

    def _scan_block(
        self,
        fn: FunctionInfo,
        cls: str,
        locks: dict[str, str],
        statements: list[ast.stmt],
        held: tuple[LockNode, ...],
        facts: _MethodFacts,
    ) -> None:
        for statement in statements:
            self._scan_statement(fn, cls, locks, statement, held, facts)

    def _scan_statement(
        self,
        fn: FunctionInfo,
        cls: str,
        locks: dict[str, str],
        statement: ast.stmt,
        held: tuple[LockNode, ...],
        facts: _MethodFacts,
    ) -> None:
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            acquired: list[LockNode] = []
            for item in statement.items:
                self._scan_expr(fn, cls, locks, item.context_expr, held, facts)
                attr = _self_attr(item.context_expr)
                if attr is not None and attr in locks:
                    node = (cls, attr)
                    self._record_acquire(
                        facts, held, node, statement.lineno
                    )
                    acquired.append(node)
            inner = held + tuple(acquired)
            self._scan_block(fn, cls, locks, statement.body, inner, facts)
            return
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs run later, under their own discipline
        # every expression in the statement sees the current held set
        for child in ast.iter_child_nodes(statement):
            if isinstance(child, ast.expr):
                self._scan_expr(fn, cls, locks, child, held, facts)
            elif isinstance(child, ast.stmt):
                self._scan_statement(fn, cls, locks, child, held, facts)
            elif isinstance(child, ast.excepthandler):
                assert isinstance(child, ast.ExceptHandler)
                self._scan_block(fn, cls, locks, child.body, held, facts)
            elif isinstance(child, ast.withitem):  # pragma: no cover
                self._scan_expr(
                    fn, cls, locks, child.context_expr, held, facts
                )

    def _scan_expr(
        self,
        fn: FunctionInfo,
        cls: str,
        locks: dict[str, str],
        expr: ast.expr,
        held: tuple[LockNode, ...],
        facts: _MethodFacts,
    ) -> None:
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            parts = chain_of(node.func)
            name = parts[-1] if parts else ""
            # self.<lock>.acquire(): an ordering acquisition, not a wait
            if (
                name == "acquire"
                and parts is not None
                and len(parts) == 3
                and parts[0] == "self"
                and parts[1] in locks
            ):
                self._record_acquire(
                    facts, held, (cls, parts[1]), node.lineno
                )
                continue
            callee = self.program.callee_of(node)
            facts.calls.append((node, callee, held))
            if self._is_blocking(name, node):
                target = ".".join(parts[:-1]) if parts else "<expr>"
                facts.blocking.add(f"{target}.{name}()")

    def _record_acquire(
        self,
        facts: _MethodFacts,
        held: tuple[LockNode, ...],
        node: LockNode,
        line: int,
    ) -> None:
        facts.acquires.add(node)
        for holder in held:
            facts.edges.append((holder, node, line))

    def _is_blocking(self, name: str, call: ast.Call) -> bool:
        if name in _BLOCKING_ALWAYS:
            return True
        if name in _BLOCKING_WITH_TIMEOUT:
            return any(
                keyword.arg in ("timeout", "block")
                for keyword in call.keywords
            )
        return False

    # ------------------------------------------------------------------
    # transitive closure over resolved method calls
    # ------------------------------------------------------------------
    def _fixpoint(self) -> None:
        for method, facts in self.method_facts.items():
            self.method_acquires[method] = set(facts.acquires)
            self.method_blocks[method] = set(facts.blocking)
        changed = True
        while changed:
            changed = False
            for method, facts in self.method_facts.items():
                for _node, callee, _held in facts.calls:
                    if callee is None or callee not in self.method_facts:
                        continue
                    before = len(self.method_acquires[method])
                    self.method_acquires[method] |= self.method_acquires[
                        callee
                    ]
                    blocks_before = len(self.method_blocks[method])
                    self.method_blocks[method] |= self.method_blocks[callee]
                    if (
                        len(self.method_acquires[method]) != before
                        or len(self.method_blocks[method]) != blocks_before
                    ):
                        changed = True

    # ------------------------------------------------------------------
    # the global edge set
    # ------------------------------------------------------------------
    def edges(self) -> dict[tuple[LockNode, LockNode], tuple[str, int]]:
        """Edge -> ``(rel_path, line)`` of one representative site."""
        out: dict[tuple[LockNode, LockNode], tuple[str, int]] = {}
        for method, facts in self.method_facts.items():
            rel_path = self._rel_path(method)
            for holder, acquired, line in facts.edges:
                out.setdefault((holder, acquired), (rel_path, line))
            for node, callee, held in facts.calls:
                if callee is None or callee not in self.method_facts:
                    continue
                for holder in held:
                    for acquired in self.method_acquires[callee]:
                        out.setdefault(
                            (holder, acquired), (rel_path, node.lineno)
                        )
        return out

    def _rel_path(self, method: str) -> str:
        info = self.program.functions[method]
        return self.program.modules[info.module].rel_path

    def module_for(self, method: str) -> ParsedModule:
        info = self.program.functions[method]
        return self.program.modules[info.module]


#: one builder per program, shared by both rules in one run
_BUILDER_CACHE: dict[int, _LockGraphBuilder] = {}


def _builder_for(program: Program) -> _LockGraphBuilder:
    builder = _BUILDER_CACHE.get(id(program))
    if builder is None:
        _BUILDER_CACHE.clear()  # one program alive at a time
        builder = _LockGraphBuilder(program)
        _BUILDER_CACHE[id(program)] = builder
    return builder


@register
class LockOrderCycleRule:
    rule_id = "lock-order-cycle"
    severity = "error"
    description = (
        "two code paths acquire the same locks in opposite orders "
        "(ABBA) — or re-acquire a non-reentrant Lock — so two threads "
        "can deadlock; fix the ordering or make the edge impossible"
    )

    def check_program(self, program: Program) -> Iterable[Finding]:
        builder = _builder_for(program)
        edges = builder.edges()
        graph: dict[LockNode, set[LockNode]] = {}
        for (holder, acquired), _site in edges.items():
            graph.setdefault(holder, set()).add(acquired)
        yield from self._self_loops(builder, edges)
        yield from self._cycles(builder, edges, graph)

    def _self_loops(
        self,
        builder: _LockGraphBuilder,
        edges: dict[tuple[LockNode, LockNode], tuple[str, int]],
    ) -> Iterator[Finding]:
        for (holder, acquired), (rel_path, line) in sorted(
            edges.items(), key=lambda item: (item[1], item[0])
        ):
            if holder != acquired:
                continue
            kind = builder.class_locks.get(holder[0], {}).get(holder[1])
            if kind in _REENTRANT:
                continue
            yield Finding(
                rel_path=rel_path,
                line=line,
                col=0,
                rule_id=self.rule_id,
                severity=self.severity,
                message=(
                    f"{_node_label(holder)} is re-acquired while already "
                    f"held and is a non-reentrant Lock — this thread "
                    f"deadlocks itself"
                ),
            )

    def _cycles(
        self,
        builder: _LockGraphBuilder,
        edges: dict[tuple[LockNode, LockNode], tuple[str, int]],
        graph: dict[LockNode, set[LockNode]],
    ) -> Iterator[Finding]:
        reported: set[frozenset[LockNode]] = set()
        for start in sorted(graph):
            cycle = self._find_cycle(graph, start)
            if cycle is None:
                continue
            key = frozenset(cycle)
            if len(cycle) < 2 or key in reported:
                continue
            reported.add(key)
            sites = [
                edges[(cycle[i], cycle[(i + 1) % len(cycle)])]
                for i in range(len(cycle))
            ]
            rel_path, line = min(sites)
            labels = [_node_label(node) for node in cycle]
            yield Finding(
                rel_path=rel_path,
                line=line,
                col=0,
                rule_id=self.rule_id,
                severity=self.severity,
                message=(
                    "lock-order cycle (ABBA deadlock candidate): "
                    + " -> ".join(labels + labels[:1])
                ),
            )

    def _find_cycle(
        self, graph: dict[LockNode, set[LockNode]], start: LockNode
    ) -> list[LockNode] | None:
        """A simple cycle through ``start``, if one exists (DFS)."""
        stack: list[tuple[LockNode, list[LockNode]]] = [(start, [start])]
        seen: set[LockNode] = set()
        while stack:
            node, path = stack.pop()
            for child in sorted(graph.get(node, ())):
                if child == start and len(path) > 1:
                    return path
                if child in seen or child in path:
                    continue
                seen.add(child)
                stack.append((child, path + [child]))
        return None


@register
class LockHoldWaitRule:
    rule_id = "lock-order-hold-wait"
    severity = "warning"
    description = (
        "a blocking wait (pipe recv/poll, semaphore/queue acquire or "
        "get with timeout, process join) runs while a lock is held — "
        "every thread needing the lock stalls for the full wait; move "
        "the wait outside, or justify why no contending thread exists"
    )

    def check_program(self, program: Program) -> Iterable[Finding]:
        builder = _builder_for(program)
        emitted: set[tuple[str, int]] = set()
        for method in sorted(builder.method_facts):
            facts = builder.method_facts[method]
            module = builder.module_for(method)
            for node, callee, held in facts.calls:
                if not held:
                    continue
                message = self._wait_message(builder, node, callee, held)
                if message is None:
                    continue
                key = (module.rel_path, node.lineno)
                if key in emitted:
                    continue
                emitted.add(key)
                yield Finding(
                    rel_path=module.rel_path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule_id=self.rule_id,
                    severity=self.severity,
                    message=message,
                ).with_context(module)

    def _wait_message(
        self,
        builder: _LockGraphBuilder,
        node: ast.Call,
        callee: str | None,
        held: tuple[LockNode, ...],
    ) -> str | None:
        held_text = ", ".join(_node_label(lock) for lock in held)
        parts = chain_of(node.func)
        name = parts[-1] if parts else ""
        if builder._is_blocking(name, node):
            target = ".".join(parts[:-1]) if parts else "<expr>"
            return (
                f"blocking {target}.{name}() while holding {held_text}"
            )
        if callee is not None and builder.method_blocks.get(callee):
            waits = ", ".join(sorted(builder.method_blocks[callee])[:3])
            return (
                f"{_short_method(callee)}() blocks internally ({waits}) "
                f"and is called while holding {held_text}"
            )
        return None


def _short_method(qualname: str) -> str:
    parts = qualname.split(".")
    return ".".join(parts[-2:])
