"""Exception contract of the API boundary.

Everything raised under ``api/`` and ``serve/`` eventually crosses
:func:`repro.api.errors.to_api_error`, which classifies known exception
families into stable wire codes and turns the rest into the opaque
``internal_error``.  A deliberate ``raise`` that falls through to the
fallback is a latent wire-contract bug: the client sees a 500 with no
actionable code for a failure the server understood perfectly well.

Both rules read the taxonomy out of the *analyzed tree's own*
``repro/api/errors.py`` (constants, ``HTTP_STATUS`` keys and the
``isinstance`` chain inside ``to_api_error``) so fixtures carry their own
taxonomy and the rules go inert when the module is absent.

* ``exc-unclassified`` (error) — a ``raise SomeError(...)`` under
  ``api/``/``serve/`` whose class neither subclasses ``ApiError`` nor
  matches any ``isinstance`` branch of ``to_api_error``.
* ``exc-unknown-code`` (error) — a string literal used as an error code
  (``ApiError("...", ...)`` / ``code="..."``) that is not a registered
  taxonomy code.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.analysis.program import Program, chain_of
from repro.analysis.registry import Finding, register

_ERRORS_MODULE = "repro.api.errors"
_SCOPE_PREFIXES = ("src/repro/api/", "src/repro/serve/")

#: raises that are control flow / programmer contracts, not API failures
_EXEMPT_BUILTINS = frozenset(
    {
        "NotImplementedError",
        "SystemExit",
        "KeyboardInterrupt",
        "StopIteration",
        "AssertionError",
    }
)


@dataclass
class _Taxonomy:
    """What ``repro/api/errors.py`` declares, read from its AST."""

    #: constant name -> code string (``WORKER_FAILED`` -> ``worker_failed``)
    constants: dict[str, str] = field(default_factory=dict)
    #: the registered wire codes (``HTTP_STATUS`` keys)
    codes: set[str] = field(default_factory=set)
    #: classified ancestors: qualnames for in-program classes,
    #: bare names for builtins (``FileNotFoundError``)
    classified: set[str] = field(default_factory=set)


def _load_taxonomy(program: Program) -> _Taxonomy | None:
    module = program.modules.get(_ERRORS_MODULE)
    if module is None:
        return None
    taxonomy = _Taxonomy()
    for statement in module.tree.body:
        if (
            isinstance(statement, ast.Assign)
            and len(statement.targets) == 1
            and isinstance(statement.targets[0], ast.Name)
            and isinstance(statement.value, ast.Constant)
            and isinstance(statement.value.value, str)
        ):
            taxonomy.constants[statement.targets[0].id] = statement.value.value
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                code = _code_of(key, taxonomy.constants)
                if code is not None:
                    taxonomy.codes.add(code)
    # ApiError and its subclasses classify themselves
    api_error = f"{_ERRORS_MODULE}.ApiError"
    if api_error in program.classes:
        taxonomy.classified.add(api_error)
    to_api_error = program.functions.get(f"{_ERRORS_MODULE}.to_api_error")
    if to_api_error is not None:
        for call in ast.walk(to_api_error.node):
            if not (
                isinstance(call, ast.Call)
                and isinstance(call.func, ast.Name)
                and call.func.id == "isinstance"
                and len(call.args) == 2
            ):
                continue
            checks = call.args[1]
            exprs = checks.elts if isinstance(checks, ast.Tuple) else [checks]
            for expr in exprs:
                parts = chain_of(expr)
                if parts is None:
                    continue
                resolved = program.resolve_symbol(_ERRORS_MODULE, expr)
                taxonomy.classified.add(
                    resolved if resolved is not None else parts[-1]
                )
    return taxonomy


def _code_of(node: ast.expr | None, constants: dict[str, str]) -> str | None:
    """The code string an expression denotes, when statically known."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    parts = chain_of(node) if node is not None else None
    if parts is not None and parts[-1] in constants:
        return constants[parts[-1]]
    return None


def _in_scope(program: Program) -> Iterator[str]:
    for name in sorted(program.modules):
        if program.modules[name].rel_path.startswith(_SCOPE_PREFIXES):
            yield name


@register
class UnclassifiedRaiseRule:
    rule_id = "exc-unclassified"
    severity = "error"
    description = (
        "an exception raised under api/ or serve/ that to_api_error "
        "cannot classify — it surfaces as an opaque internal_error; "
        "raise a taxonomy-mapped class or teach to_api_error about it"
    )

    def check_program(self, program: Program) -> Iterable[Finding]:
        taxonomy = _load_taxonomy(program)
        if taxonomy is None:
            return
        for module_name in _in_scope(program):
            module = program.modules[module_name]
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Raise) or node.exc is None:
                    continue
                raised = self._raised_class(program, module_name, node.exc)
                if raised is None:
                    continue  # re-raised variable, dynamic expression
                if self._classified(program, taxonomy, raised):
                    continue
                yield Finding(
                    rel_path=module.rel_path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule_id=self.rule_id,
                    severity=self.severity,
                    message=(
                        f"raise {raised.split('.')[-1]} is not classified "
                        f"by to_api_error — clients get a bare "
                        f"internal_error; map it to a taxonomy code or "
                        f"raise an ApiError subclass"
                    ),
                ).with_context(module)

    def _raised_class(
        self, program: Program, module_name: str, exc: ast.expr
    ) -> str | None:
        """Qualname/builtin name of the raised class, or None to skip."""
        target = exc.func if isinstance(exc, ast.Call) else exc
        parts = chain_of(target)
        if parts is None:
            return None
        resolved = program.resolve_symbol(module_name, target)
        if resolved is not None:
            # ``raise make_error(...)``: judge the factory's return type
            factory = program.functions.get(resolved)
            if factory is not None:
                return factory.return_class  # None (unknown) -> skip
            return resolved
        name = parts[-1]
        # a bare capitalised name that resolves nowhere: builtin exception
        # (`raise ValueError(...)`); a lowercase name is a variable re-raise
        if len(parts) == 1 and name[:1].isupper():
            return name
        return None

    def _classified(
        self, program: Program, taxonomy: _Taxonomy, raised: str
    ) -> bool:
        if raised in _EXEMPT_BUILTINS:
            return True
        if raised in taxonomy.classified:
            return True
        if raised in program.classes:
            return program.is_subclass_of(raised, taxonomy.classified)
        # builtin: classified only if to_api_error names it (or a base
        # builtin we can see lexically — FileNotFoundError is an OSError,
        # but to_api_error checks the subclass, so match by name only)
        return False


@register
class UnknownCodeRule:
    rule_id = "exc-unknown-code"
    severity = "error"
    description = (
        "a string used as a wire error code that HTTP_STATUS does not "
        "register — clients cannot branch on it and the status falls "
        "back to 500; add it to the taxonomy or use an existing code"
    )

    def check_program(self, program: Program) -> Iterable[Finding]:
        taxonomy = _load_taxonomy(program)
        if taxonomy is None or not taxonomy.codes:
            return
        for module_name in _in_scope(program):
            module = program.modules[module_name]
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                for code, site in self._code_literals(program, node):
                    if code in taxonomy.codes:
                        continue
                    yield Finding(
                        rel_path=module.rel_path,
                        line=site.lineno,
                        col=site.col_offset,
                        rule_id=self.rule_id,
                        severity=self.severity,
                        message=(
                            f"error code {code!r} is not registered in "
                            f"the taxonomy (repro/api/errors.py "
                            f"HTTP_STATUS) — clients cannot branch on it"
                        ),
                    ).with_context(module)

    def _code_literals(
        self, program: Program, call: ast.Call
    ) -> Iterator[tuple[str, ast.expr]]:
        """``(code, expr)`` for statically-known codes fed to this call."""
        parts = chain_of(call.func)
        if parts is None:
            return
        name = parts[-1]
        is_api_error = name == "ApiError" or name.endswith("Envelope")
        for keyword in call.keywords:
            if keyword.arg == "code":
                literal = self._literal(keyword.value)
                if literal is not None:
                    yield literal, keyword.value
        if is_api_error and call.args:
            literal = self._literal(call.args[0])
            if literal is not None:
                yield literal, call.args[0]

    def _literal(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        return None
