"""Lock discipline: guarded attributes stay guarded.

For every class that owns a ``threading.Lock`` / ``RLock`` attribute, the
rule *infers* the guarded state — the set of ``self.<attr>`` names written
inside any ``with self.<lock>:`` block outside ``__init__`` — and then
flags every read or write of a guarded attribute that happens outside every
lock context.  ``__init__`` is construction time (the object is not shared
yet) and is exempt on both sides of the inference.

This is deliberately conservative in both directions: attributes only ever
written under a lock are assumed to *need* the lock everywhere, and an
access is "guarded" if it sits under a ``with`` on *any* of the class's
locks (the per-lock attribution of a class with several mutexes is the
author's job, not inferrable).  Sound lock-free fast paths (double-checked
lazy init, atomic snapshot reads) are exactly what justified suppressions
are for — the justification documents the memory-model argument.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.registry import Finding, register
from repro.analysis.walker import ParsedModule

#: method calls on ``self.<attr>`` that mutate the attribute's value
_MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "clear",
        "pop",
        "popitem",
        "remove",
        "discard",
        "setdefault",
        "move_to_end",
        "appendleft",
        "popleft",
        "fill",
    }
)

_LOCK_TYPES = frozenset({"Lock", "RLock"})


def _is_lock_constructor(node: ast.expr) -> bool:
    """``threading.Lock()`` / ``threading.RLock()`` / bare ``Lock()``."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute):
        return (
            isinstance(func.value, ast.Name)
            and func.value.id == "threading"
            and func.attr in _LOCK_TYPES
        )
    if isinstance(func, ast.Name):
        return func.id in _LOCK_TYPES
    return False


def _self_attr(node: ast.expr) -> str | None:
    """``self.<attr>`` -> attr name, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _methods(cls: ast.ClassDef) -> Iterator[ast.FunctionDef]:
    for statement in cls.body:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield statement  # type: ignore[misc]


def _written_attrs(node: ast.AST) -> Iterator[tuple[str, ast.AST]]:
    """``self.<attr>`` names mutated anywhere under ``node``."""
    for child in ast.walk(node):
        targets: list[ast.expr] = []
        if isinstance(child, ast.Assign):
            targets = list(child.targets)
        elif isinstance(child, (ast.AugAssign, ast.AnnAssign)):
            targets = [child.target]
        for target in targets:
            for leaf in _unpack_targets(target):
                attr = _self_attr(leaf)
                if attr is None and isinstance(leaf, ast.Subscript):
                    attr = _self_attr(leaf.value)
                if attr is not None:
                    yield attr, child
        if (
            isinstance(child, ast.Call)
            and isinstance(child.func, ast.Attribute)
            and child.func.attr in _MUTATING_METHODS
        ):
            attr = _self_attr(child.func.value)
            if attr is not None:
                yield attr, child


def _unpack_targets(target: ast.expr) -> Iterator[ast.expr]:
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _unpack_targets(element)
    else:
        yield target


@register
class LockDisciplineRule:
    rule_id = "lock-unguarded-attr"
    severity = "error"
    description = (
        "attribute written under `with self.<lock>:` elsewhere in the "
        "class is accessed outside every lock context; take the lock, or "
        "suppress with the memory-model justification"
    )

    def applies_to(self, rel_path: str) -> bool:
        return rel_path.startswith("src/repro/")

    def check(self, module: ParsedModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    # ------------------------------------------------------------------
    def _check_class(
        self, module: ParsedModule, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        lock_attrs = self._lock_attrs(cls)
        if not lock_attrs:
            return
        guarded = self._guarded_attrs(cls, lock_attrs)
        if not guarded:
            return
        for method in _methods(cls):
            if method.name == "__init__":
                continue
            yield from self._check_method(
                module, cls, method, lock_attrs, guarded
            )

    def _lock_attrs(self, cls: ast.ClassDef) -> frozenset[str]:
        """``self.<name> = threading.Lock()`` assignments, class-wide."""
        names: set[str] = set()
        for node in ast.walk(cls):
            if isinstance(node, ast.Assign) and _is_lock_constructor(
                node.value
            ):
                for target in node.targets:
                    attr = _self_attr(target)
                    if attr is not None:
                        names.add(attr)
        return frozenset(names)

    def _guarded_attrs(
        self, cls: ast.ClassDef, lock_attrs: frozenset[str]
    ) -> frozenset[str]:
        """Attributes written under any ``with self.<lock>:`` block."""
        guarded: set[str] = set()
        for method in _methods(cls):
            if method.name == "__init__":
                continue
            for node in ast.walk(method):
                if not self._is_lock_with(node, lock_attrs):
                    continue
                assert isinstance(node, ast.With)
                for statement in node.body:
                    for attr, _site in _written_attrs(statement):
                        guarded.add(attr)
        return frozenset(guarded - lock_attrs)

    def _is_lock_with(
        self, node: ast.AST, lock_attrs: frozenset[str]
    ) -> bool:
        if not isinstance(node, ast.With):
            return False
        for item in node.items:
            attr = _self_attr(item.context_expr)
            if attr is not None and attr in lock_attrs:
                return True
        return False

    def _check_method(
        self,
        module: ParsedModule,
        cls: ast.ClassDef,
        method: ast.FunctionDef,
        lock_attrs: frozenset[str],
        guarded: frozenset[str],
    ) -> Iterator[Finding]:
        for node in ast.walk(method):
            attr = _self_attr(node) if isinstance(node, ast.Attribute) else None
            if attr is None or attr not in guarded:
                continue
            if self._under_lock(module, node, lock_attrs):
                continue
            access = (
                "written" if isinstance(node.ctx, (ast.Store, ast.Del))
                else "read"
            )
            yield Finding(
                rel_path=module.rel_path,
                line=node.lineno,
                col=node.col_offset,
                rule_id=self.rule_id,
                severity=self.severity,
                message=(
                    f"{cls.name}.{attr} is {access} outside any lock "
                    f"context, but it is written under "
                    f"`with self.<lock>:` elsewhere in the class "
                    f"(locks: {', '.join(sorted(lock_attrs))})"
                ),
            ).with_context(module)

    def _under_lock(
        self,
        module: ParsedModule,
        node: ast.AST,
        lock_attrs: frozenset[str],
    ) -> bool:
        for ancestor in module.ancestors(node):
            if self._is_lock_with(ancestor, lock_attrs):
                return True
            if isinstance(ancestor, ast.ClassDef):
                break
        return False
