"""Determinism rules.

The whole reproduction is built on "same input, same bytes out" — the
engines are proven equivalent by byte-comparison, bundle caches are
content-addressed, and the planner must produce the same plan for the same
corpus on every run.  Two per-module ways that property silently dies:

* an **unseeded random source** (module-level ``random.*`` or legacy
  ``np.random.*``) varies per process,
* **unordered iteration** in the planning / fused hot paths makes bucket
  and block construction depend on insertion history rather than content.

Wall clock flowing into identities is the interprocedural
``det-taint-interproc`` rule (see :mod:`repro.analysis.rules.taint`),
which replaced the old lexical ``det-wallclock-key`` heuristic.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.registry import Finding, register
from repro.analysis.walker import ParsedModule

#: module-level ``random`` functions that read the shared, unseeded state
_UNSEEDED_RANDOM_FNS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "getrandbits",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "triangular",
        "betavariate",
        "expovariate",
        "gammavariate",
        "gauss",
        "lognormvariate",
        "normalvariate",
        "vonmisesvariate",
        "paretovariate",
        "weibullvariate",
        "seed",
    }
)

#: legacy numpy global-state RNG entry points
_NP_RANDOM_FNS = frozenset(
    {
        "seed",
        "random",
        "rand",
        "randn",
        "randint",
        "random_sample",
        "choice",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
    }
)

#: the hot planning / fused-execution modules held to content-ordering
_ORDER_SENSITIVE_MODULES = (
    "src/repro/pipeline/planner.py",
    "src/repro/core/fused.py",
    "src/repro/graph/fused.py",
)


def _call_name(node: ast.Call) -> str:
    """The rightmost name of a call target (``a.b.c()`` -> ``c``)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


@register
class UnseededRandomRule:
    rule_id = "det-unseeded-random"
    severity = "error"
    description = (
        "module-level random.* / legacy np.random.* reads shared unseeded "
        "state; thread a random.Random(seed) / np.random.default_rng(seed) "
        "through instead"
    )

    def applies_to(self, rel_path: str) -> bool:
        return rel_path.startswith("src/repro/")

    def check(self, module: ParsedModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            value = func.value
            # random.<fn>(...) on the module itself
            if isinstance(value, ast.Name) and value.id == "random":
                if func.attr in _UNSEEDED_RANDOM_FNS:
                    yield self._finding(
                        module,
                        node,
                        f"random.{func.attr}() uses the shared unseeded "
                        f"global RNG",
                    )
                elif func.attr == "Random" and not node.args:
                    yield self._finding(
                        module,
                        node,
                        "random.Random() without a seed is "
                        "OS-entropy-seeded; pass an explicit seed",
                    )
            # np.random.<fn>(...) / numpy.random.<fn>(...)
            elif (
                isinstance(value, ast.Attribute)
                and value.attr == "random"
                and isinstance(value.value, ast.Name)
                and value.value.id in ("np", "numpy")
            ):
                if func.attr in _NP_RANDOM_FNS:
                    yield self._finding(
                        module,
                        node,
                        f"np.random.{func.attr}() uses numpy's global RNG "
                        f"state",
                    )
                elif func.attr == "default_rng" and not node.args:
                    yield self._finding(
                        module,
                        node,
                        "np.random.default_rng() without a seed is "
                        "OS-entropy-seeded; pass an explicit seed",
                    )

    def _finding(
        self, module: ParsedModule, node: ast.AST, detail: str
    ) -> Finding:
        return Finding(
            rel_path=module.rel_path,
            line=node.lineno,
            col=node.col_offset,
            rule_id=self.rule_id,
            severity=self.severity,
            message=f"{detail} — annotation output must be seed-deterministic",
        ).with_context(module)


@register
class UnorderedIterationRule:
    rule_id = "det-unordered-iter"
    severity = "warning"
    description = (
        "iteration over dict views / sets in a planning or fused hot path "
        "follows insertion (or hash) order, not content order; wrap in "
        "sorted() or justify why the build order is itself deterministic"
    )

    def applies_to(self, rel_path: str) -> bool:
        return rel_path in _ORDER_SENSITIVE_MODULES

    def check(self, module: ParsedModule) -> Iterable[Finding]:
        iters: list[ast.expr] = []
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, ast.comprehension):
                iters.append(node.iter)
        for expr in iters:
            detail = self._unordered_detail(expr)
            if detail is None:
                continue
            yield Finding(
                rel_path=module.rel_path,
                line=expr.lineno,
                col=expr.col_offset,
                rule_id=self.rule_id,
                severity=self.severity,
                message=(
                    f"iterating {detail} in a hot planning path — order "
                    f"here must be a function of content (sorted), not of "
                    f"build history"
                ),
            ).with_context(module)

    def _unordered_detail(self, expr: ast.expr) -> str | None:
        if isinstance(expr, ast.Call):
            name = _call_name(expr)
            if name == "sorted":
                return None
            if isinstance(expr.func, ast.Attribute) and expr.func.attr in (
                "items",
                "keys",
                "values",
            ):
                return f"a dict .{expr.func.attr}() view"
            if isinstance(expr.func, ast.Name) and expr.func.id in (
                "set",
                "frozenset",
            ):
                return f"a {expr.func.id}()"
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return "a set expression"
        return None
