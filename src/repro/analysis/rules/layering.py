"""Architecture layering: the declared layer contract over the import graph.

:mod:`repro.analysis.layers` declares the tiers (foundation <
orchestration < api < frontends).  Two rules enforce it project-wide:

* ``arch-layering`` — no module imports from a tier above its own.
  ``TYPE_CHECKING``-only imports are exempt (erased at runtime); lazy
  function-local imports still count — they are runtime coupling, just
  deferred — but are exactly what a justified suppression is for when the
  upward dependency is deliberate (e.g. the API's lazy use of the
  serve-owned bundle format).
* ``arch-import-cycle`` — no cycle among *load-time* imports.  Lazy
  imports are excluded here: breaking a load-time cycle by deferring one
  edge is the sanctioned idiom.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis import layers
from repro.analysis.program import ImportEdge, Program
from repro.analysis.registry import Finding, register


def _finding_for_edge(
    program: Program, rule_id: str, severity: str, edge: ImportEdge, message: str
) -> Finding:
    module = program.modules[edge.importer]
    return Finding(
        rel_path=module.rel_path,
        line=edge.line,
        col=0,
        rule_id=rule_id,
        severity=severity,
        message=message,
    )


@register
class LayerContractRule:
    rule_id = "arch-layering"
    severity = "error"
    description = (
        "import reaches UP the declared layer contract "
        "(foundation < orchestration < api < frontends; see "
        "analysis/layers.py and docs/ARCHITECTURE.md)"
    )

    def check_program(self, program: Program) -> Iterable[Finding]:
        for edge in sorted(
            set(program.import_edges),
            key=lambda e: (e.importer, e.line, e.target),
        ):
            if edge.type_checking:
                continue
            from_tier = layers.layer_index(edge.importer)
            to_tier = layers.layer_index(edge.target)
            if from_tier is None or to_tier is None or to_tier <= from_tier:
                continue
            kind = "imports" if edge.top_level else "lazily imports"
            yield _finding_for_edge(
                program,
                self.rule_id,
                self.severity,
                edge,
                f"{edge.importer} ({layers.LAYERS[from_tier][0]}) {kind} "
                f"{edge.target} ({layers.LAYERS[to_tier][0]}) — lower "
                f"layers must not depend on higher ones",
            )


@register
class ImportCycleRule:
    rule_id = "arch-import-cycle"
    severity = "error"
    description = (
        "cycle among load-time imports — modules in the cycle cannot be "
        "imported independently; defer one edge or move the shared piece "
        "down a layer"
    )

    def check_program(self, program: Program) -> Iterable[Finding]:
        graph: dict[str, dict[str, ImportEdge]] = {}
        for edge in program.import_edges:
            if not edge.top_level or edge.type_checking:
                continue
            if edge.importer == edge.target:
                continue
            graph.setdefault(edge.importer, {}).setdefault(edge.target, edge)
        seen: set[frozenset[str]] = set()
        for component in _strongly_connected(graph):
            if len(component) < 2:
                continue
            key = frozenset(component)
            if key in seen:
                continue
            seen.add(key)
            members = sorted(component)
            # anchor at the lexically first edge inside the cycle
            edges = [
                edge
                for importer in members
                for target, edge in graph.get(importer, {}).items()
                if target in key
            ]
            anchor = min(
                edges, key=lambda e: (program.modules[e.importer].rel_path, e.line)
            )
            yield _finding_for_edge(
                program,
                self.rule_id,
                self.severity,
                anchor,
                "load-time import cycle: " + " -> ".join(members + members[:1]),
            )


def _strongly_connected(
    graph: dict[str, dict[str, ImportEdge]]
) -> list[list[str]]:
    """Tarjan's SCC, iterative (deterministic order)."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[list[str]] = []
    counter = 0
    nodes = sorted(set(graph) | {t for targets in graph.values() for t in targets})

    for start in nodes:
        if start in index:
            continue
        work: list[tuple[str, Iterable[str]]] = [
            (start, iter(sorted(graph.get(start, {}))))
        ]
        index[start] = lowlink[start] = counter
        counter += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index:
                    index[child] = lowlink[child] = counter
                    counter += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(sorted(graph.get(child, {})))))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components
