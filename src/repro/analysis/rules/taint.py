"""Interprocedural determinism taint: sources must never reach identities.

Replaces the old intraprocedural ``det-wallclock-key`` heuristic.  The
:mod:`~repro.analysis.dataflow` pass propagates wall-clock / unseeded-RNG
/ ``os.environ`` / ``id()`` taint through assignments and resolved call
edges; this rule then checks every sink where a value becomes an
*identity*:

* the return value of a function whose name says it builds one
  (``*key*``, ``*signature*``, ``*fingerprint*``, ``*cache*``),
* any argument of a call whose name says it hashes or keys
  (``*hash*``, ``hashlib.sha256``-family constructors, ``*key*``, ...),
* any argument of a wire-payload constructor (``*Response``,
  ``*Envelope``) — responses must be byte-identical for identical
  requests.

Timing fields measured with ``perf_counter`` are not taints (see the
dataflow module), so legitimate ``timing=...`` response fields stay
clean.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from repro.analysis.dataflow import Taint, TaintAnalysis
from repro.analysis.program import FunctionInfo, Program, chain_of
from repro.analysis.registry import Finding, register

#: a function whose *name* declares it builds an identity
_KEYISH_FN = re.compile(r"key|signature|fingerprint|cache", re.IGNORECASE)
#: a call whose name consumes values into an identity
_KEYISH_CALL = re.compile(r"key|signature|fingerprint|hash", re.IGNORECASE)
#: hashlib-style digest constructors
_HASH_FNS = frozenset({"sha1", "sha224", "sha256", "sha384", "sha512",
                       "md5", "blake2b", "blake2s"})


def _sink_call_label(call: ast.Call) -> str | None:
    """What identity sink a call is, if it is one."""
    parts = chain_of(call.func)
    if parts is None:
        return None
    name = parts[-1]
    if name in _HASH_FNS:
        return f"digest {'.'.join(parts[-2:])}()"
    if _KEYISH_CALL.search(name):
        return f"call to {name}()"
    if name.endswith(("Response", "Envelope")) and name[0].isupper():
        return f"wire payload {name}(...)"
    return None


@register
class InterprocTaintRule:
    rule_id = "det-taint-interproc"
    severity = "error"
    description = (
        "wall clock / unseeded RNG / os.environ / id() flows (possibly "
        "through helper calls) into a cache key, signature, manifest "
        "hash or wire payload — identities must be pure functions of "
        "content"
    )

    def check_program(self, program: Program) -> Iterable[Finding]:
        analysis = TaintAnalysis(program)
        emitted: set[tuple[str, int]] = set()
        for fn in sorted(
            program.functions.values(), key=lambda f: f.qualname
        ):
            module = program.modules[fn.module]
            for finding in self._check_function(program, analysis, fn):
                key = (finding.rel_path, finding.line)
                if key in emitted:
                    continue
                emitted.add(key)
                yield finding.with_context(module)

    def _check_function(
        self, program: Program, analysis: TaintAnalysis, fn: FunctionInfo
    ) -> Iterator[Finding]:
        module = program.modules[fn.module]
        keyish_owner = bool(_KEYISH_FN.search(fn.node.name))
        for node in ast.walk(fn.node):
            if (
                keyish_owner
                and isinstance(node, ast.Return)
                and node.value is not None
            ):
                taints = analysis.taints_of(fn, node.value)
                if taints:
                    yield self._finding(
                        module.rel_path,
                        node,
                        taints,
                        f"the return value of {fn.node.name}()",
                    )
            if isinstance(node, ast.Call):
                label = _sink_call_label(node)
                if label is None:
                    continue
                call_taints: set[Taint] = set()
                for arg in node.args:
                    call_taints |= analysis.taints_of(fn, arg)
                for keyword in node.keywords:
                    call_taints |= analysis.taints_of(fn, keyword.value)
                if call_taints:
                    yield self._finding(
                        module.rel_path, node, call_taints, label
                    )

    def _finding(
        self,
        rel_path: str,
        node: ast.AST,
        taints: set[Taint],
        sink: str,
    ) -> Finding:
        described = "; ".join(
            sorted({taint.describe() for taint in taints})
        )
        return Finding(
            rel_path=rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            severity=self.severity,
            message=(
                f"nondeterministic value ({described}) reaches {sink} — "
                f"identities must be pure functions of content, never of "
                f"the clock, RNG or environment"
            ),
        )
