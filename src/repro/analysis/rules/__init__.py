"""Rule families: determinism, lock discipline, numpy contracts, wire schema."""
