"""Numpy contracts for the engine modules.

Two contracts the vectorized engines live by:

* **scratch buffers never escape.**  The pooled / thread-local scratch
  helpers (``_borrow``, ``_compact_scratch``, anything named ``*scratch*``)
  hand out views of reused backing memory; the borrower may mutate the view
  freely but must copy before the array leaves the function (return, store
  on ``self``, append to a container) — the next borrower will overwrite
  the bytes underneath it.
* **engine allocations pin their dtype.**  ``np.zeros`` / ``np.empty`` /
  ``np.full`` in the hot engine modules must say ``dtype=`` explicitly:
  the byte-identity guarantees across scalar/batched/fused engines depend
  on every array's width being a stated decision, not an inherited default.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from repro.analysis.registry import Finding, register
from repro.analysis.walker import ParsedModule

#: modules holding vectorized engine code (the byte-identity hot paths)
ENGINE_MODULES = (
    "src/repro/core/candidates_batched.py",
    "src/repro/core/fused.py",
    "src/repro/graph/bp.py",
    "src/repro/graph/compiled.py",
    "src/repro/graph/fused.py",
    "src/repro/text/index.py",
)

_ALLOCATORS = frozenset({"zeros", "empty", "full"})

#: a call to one of these hands out pooled / reused scratch memory
_SCRATCH_HELPER = re.compile(r"scratch|borrow", re.IGNORECASE)


def _callee_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


@register
class MissingDtypeRule:
    rule_id = "np-missing-dtype"
    severity = "warning"
    description = (
        "np.zeros/np.empty/np.full in an engine module without an explicit "
        "dtype=; byte-identity across engines requires stated array widths"
    )

    def applies_to(self, rel_path: str) -> bool:
        return rel_path in ENGINE_MODULES

    def check(self, module: ParsedModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in _ALLOCATORS
                and isinstance(func.value, ast.Name)
                and func.value.id in ("np", "numpy")
            ):
                continue
            if any(keyword.arg == "dtype" for keyword in node.keywords):
                continue
            yield Finding(
                rel_path=module.rel_path,
                line=node.lineno,
                col=node.col_offset,
                rule_id=self.rule_id,
                severity=self.severity,
                message=(
                    f"np.{func.attr}() without dtype= in an engine module — "
                    f"make the array width explicit (the default is an "
                    f"unstated float64 dependency)"
                ),
            ).with_context(module)


@register
class ScratchEscapeRule:
    rule_id = "np-scratch-escape"
    severity = "error"
    description = (
        "an array borrowed from a pooled/thread-local scratch helper "
        "escapes its borrowing function without .copy(); the backing "
        "buffer is reused and will be overwritten"
    )

    def applies_to(self, rel_path: str) -> bool:
        return rel_path.startswith("src/repro/")

    def check(self, module: ParsedModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _SCRATCH_HELPER.search(node.name):
                    continue  # the helper itself legitimately returns scratch
                yield from self._check_function(module, node)

    def _check_function(
        self,
        module: ParsedModule,
        function: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[Finding]:
        borrowed = self._borrowed_names(function)
        if not borrowed:
            return
        for node in ast.walk(function):
            if isinstance(node, ast.Return) and node.value is not None:
                name = self._escaping_name(node.value, borrowed)
                if name is not None:
                    yield self._finding(
                        module,
                        node,
                        f"scratch array '{name}' is returned without "
                        f".copy()",
                    )
            elif isinstance(node, ast.Assign):
                name = self._escaping_name(node.value, borrowed)
                if name is None:
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Attribute):
                        yield self._finding(
                            module,
                            node,
                            f"scratch array '{name}' is stored on "
                            f"{ast.unparse(target)} without .copy()",
                        )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and (
                    node.func.attr in ("append", "extend", "insert")
                    # container .add() takes exactly one argument; a wider
                    # signature is some compute method (np.add, plan.add)
                    or (node.func.attr == "add" and len(node.args) == 1)
                )
                and not (
                    isinstance(node.func.value, ast.Name)
                    and node.func.value.id in ("np", "numpy")
                )
            ):
                for arg in node.args:
                    name = self._escaping_name(arg, borrowed)
                    if name is not None:
                        yield self._finding(
                            module,
                            node,
                            f"scratch array '{name}' is stashed via "
                            f".{node.func.attr}() without .copy()",
                        )

    def _borrowed_names(
        self, function: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> set[str]:
        """Local names bound to the result of a scratch-helper call."""
        names: set[str] = set()
        for node in ast.walk(function):
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            if not _SCRATCH_HELPER.search(_callee_name(node.value)):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        return names

    def _escaping_name(
        self, expr: ast.expr, borrowed: set[str]
    ) -> str | None:
        """The borrowed name behind ``expr`` when it escapes uncopied."""
        if isinstance(expr, ast.Name) and expr.id in borrowed:
            return expr.id
        if isinstance(expr, ast.Subscript):
            return self._escaping_name(expr.value, borrowed)
        return None

    def _finding(
        self, module: ParsedModule, node: ast.AST, detail: str
    ) -> Finding:
        return Finding(
            rel_path=module.rel_path,
            line=node.lineno,
            col=node.col_offset,
            rule_id=self.rule_id,
            severity=self.severity,
            message=(
                f"{detail} — pooled scratch memory is overwritten by the "
                f"next borrower"
            ),
        ).with_context(module)
