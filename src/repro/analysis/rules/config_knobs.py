"""Config-knob drift: every tunable must be reachable and documented.

A field added to :class:`SessionConfig` / :class:`ServeConfig` but never
wired to a CLI flag is dead weight at best — operators cannot set it — and
a silent fork of the config surface at worst.  One field, three places:

* the dataclass field (``repro/api/config.py``),
* a ``--flag`` in ``repro/cli.py`` (underscores become dashes; a
  ``_seconds`` suffix may be dropped, matching the existing flags),
* a mention in ``docs/OPERATIONS.md`` (the operator-facing reference).

Only scalar (``int``/``float``/``str``/``bool``) fields participate —
nested config objects are composed, not flag-mapped.  The rule is inert
when the tree has no ``repro.api.config`` + ``repro.cli`` pair, so
unrelated fixtures stay quiet.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from repro.analysis.program import Program
from repro.analysis.registry import Finding, register

_CONFIG_MODULE = "repro.api.config"
_CLI_MODULE = "repro.cli"
_OPERATIONS_DOC = "docs/OPERATIONS.md"
_CONFIG_CLASSES = ("SessionConfig", "ServeConfig")
_SCALARS = frozenset({"int", "float", "str", "bool"})


def _scalar_fields(
    program: Program, class_name: str
) -> Iterator[tuple[str, ast.AnnAssign]]:
    info = program.classes.get(f"{_CONFIG_MODULE}.{class_name}")
    if info is None:
        return
    for statement in info.node.body:
        if (
            isinstance(statement, ast.AnnAssign)
            and isinstance(statement.target, ast.Name)
            and isinstance(statement.annotation, ast.Name)
            and statement.annotation.id in _SCALARS
        ):
            yield statement.target.id, statement


def _flags_for(field_name: str) -> tuple[str, ...]:
    """Acceptable CLI spellings: full, and with ``_seconds`` dropped."""
    full = "--" + field_name.replace("_", "-")
    if field_name.endswith("_seconds"):
        return (full, "--" + field_name[: -len("_seconds")].replace("_", "-"))
    return (full,)


def _string_constants(tree: ast.Module) -> set[str]:
    return {
        node.value
        for node in ast.walk(tree)
        if isinstance(node, ast.Constant) and isinstance(node.value, str)
    }


def _mentioned(text: str, field_name: str, flags: tuple[str, ...]) -> bool:
    if any(flag in text for flag in flags):
        return True
    return re.search(rf"(?<![a-z_]){field_name}(?![a-z_])", text) is not None


@register
class ConfigKnobDriftRule:
    rule_id = "config-knob-drift"
    severity = "error"
    description = (
        "a scalar SessionConfig/ServeConfig field with no CLI flag or "
        "no docs/OPERATIONS.md mention — operators cannot set or "
        "discover it; wire the flag and document the knob"
    )

    def check_program(self, program: Program) -> Iterable[Finding]:
        cli = program.modules.get(_CLI_MODULE)
        config = program.modules.get(_CONFIG_MODULE)
        if cli is None or config is None:
            return
        flags_in_cli = _string_constants(cli.tree)
        doc_path = program.root / _OPERATIONS_DOC
        doc_text = doc_path.read_text() if doc_path.is_file() else None
        for class_name in _CONFIG_CLASSES:
            for field_name, statement in _scalar_fields(program, class_name):
                flags = _flags_for(field_name)
                missing: list[str] = []
                if not any(flag in flags_in_cli for flag in flags):
                    missing.append(f"CLI flag {flags[-1]}")
                if doc_text is not None and not _mentioned(
                    doc_text, field_name, flags
                ):
                    missing.append(f"a mention in {_OPERATIONS_DOC}")
                if not missing:
                    continue
                yield Finding(
                    rel_path=config.rel_path,
                    line=statement.lineno,
                    col=statement.col_offset,
                    rule_id=self.rule_id,
                    severity=self.severity,
                    message=(
                        f"{class_name}.{field_name} is missing "
                        + " and ".join(missing)
                        + " — the knob is unreachable/undiscoverable"
                    ),
                ).with_context(config)
