"""The committed findings baseline — a ratchet that only goes down.

Pre-existing findings live in ``reprolint_baseline.json`` as a multiset of
``(rule, path, context)`` keys — the *context* is the stripped source line,
so the baseline survives line-number drift from unrelated edits.  The gate:

* a finding whose key has spare capacity in the baseline is **old** (shown,
  not fatal),
* any finding beyond the baselined count for its key is **new** — CI fails,
* a baseline entry no fresh finding matches is **stale** — the violation
  was fixed, so the entry must be deleted (``--write-baseline`` does it);
  the committed file always exactly matches a fresh run (pinned by
  ``tests/analysis/test_baseline.py``), which is what makes the ratchet
  monotone: entries leave when fixed and can never quietly return.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable

from repro.analysis.registry import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "reprolint_baseline.json"

BaselineKey = tuple[str, str, str]  # (rule, path, context)


def load_baseline(path: Path) -> Counter[BaselineKey]:
    """The committed multiset of findings (empty when no file exists)."""
    if not path.is_file():
        return Counter()
    document = json.loads(path.read_text(encoding="utf-8"))
    version = document.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"{path}: baseline version {version!r} is not "
            f"{BASELINE_VERSION}; regenerate with --write-baseline"
        )
    baseline: Counter[BaselineKey] = Counter()
    for entry in document.get("findings", []):
        key = (entry["rule"], entry["path"], entry["context"])
        baseline[key] = int(entry.get("count", 1))
    return baseline


def baseline_document(findings: Iterable[Finding]) -> dict:
    """The serialized form of a findings multiset (deterministic order)."""
    counts: Counter[BaselineKey] = Counter(
        finding.key() for finding in findings
    )
    return {
        "version": BASELINE_VERSION,
        "findings": [
            {"rule": rule, "path": path, "context": context, "count": count}
            for (rule, path, context), count in sorted(counts.items())
        ],
    }


def write_baseline(path: Path, findings: Iterable[Finding]) -> None:
    path.write_text(
        json.dumps(baseline_document(findings), indent=1) + "\n",
        encoding="utf-8",
    )


def split_findings(
    findings: list[Finding], baseline: Counter[BaselineKey]
) -> tuple[list[Finding], list[Finding], Counter[BaselineKey]]:
    """``(old, new, stale)`` relative to the baseline.

    Findings sharing a key consume baseline capacity in source order; the
    overflow is new.  ``stale`` is the baseline capacity nothing consumed —
    fixed violations whose entries must now leave the committed file.
    """
    remaining = Counter(baseline)
    old: list[Finding] = []
    new: list[Finding] = []
    for finding in sorted(findings):
        key = finding.key()
        if remaining[key] > 0:
            remaining[key] -= 1
            old.append(finding)
        else:
            new.append(finding)
    # rename re-key: a "new" finding whose (rule, context) matches leftover
    # capacity under a *different* path is a moved file, not a new
    # violation — let it consume that capacity (context is the stripped
    # source line, so the match is on the actual offending code)
    renamed: list[Finding] = []
    still_new: list[Finding] = []
    for finding in new:
        rule_id, _path, context = finding.key()
        if not context:
            still_new.append(finding)
            continue
        donor = next(
            (
                key
                for key in sorted(remaining)
                if remaining[key] > 0
                and key[0] == rule_id
                and key[2] == context
            ),
            None,
        )
        if donor is None:
            still_new.append(finding)
        else:
            remaining[donor] -= 1
            renamed.append(finding)
    if renamed:
        old = sorted(old + renamed)
        new = still_new
    stale = Counter({key: count for key, count in remaining.items() if count > 0})
    return old, new, stale
