"""Forward taint dataflow over the whole-program call graph.

Sources are the nondeterminism reads that must never shape an identity:
wall clock (``time.time`` / ``datetime.now`` / ``date.today``), unseeded
RNG draws, ``os.environ`` reads and ``id()``.  The analysis is a simple
forward pass per function — assignments propagate taint through local
names (and ``self.<attr>`` pseudo-names), expressions union the taints of
their operands — plus two interprocedural summaries computed to fixpoint
over the call graph:

* **returns**: the source taints a function's return value can carry,
* **param flows**: which parameters flow into the return value, so a
  tainted argument stays tainted through a formatting/combining helper.

Monotonic-union state means the fixpoint always converges; ``via`` chains
record the call path for human-readable findings but never affect
convergence (summaries are keyed by ``(kind, source)``).

``time.perf_counter`` / ``time.monotonic`` are deliberately *not*
sources: they are the sanctioned timing reads and only ever feed metrics.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.program import FunctionInfo, Program, chain_of

#: taint kinds, by source family
WALL_CLOCK = "wall-clock"
UNSEEDED_RANDOM = "unseeded-random"
ENVIRON = "environ"
OBJECT_IDENTITY = "object-identity"

#: internal marker taint seeded on parameters to detect param->return flow;
#: never surfaced in findings
_PARAM = "__param__"

#: ``(value name, attribute)`` pairs that read the wall clock
_WALL_CLOCK_CALLS = frozenset(
    {
        ("time", "time"),
        ("time", "time_ns"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("date", "today"),
    }
)

#: module-level ``random.*`` draws on the shared unseeded state (the
#: authoritative list lives with the intraprocedural rule)
_RANDOM_FNS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "getrandbits",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "normal",
        "rand",
        "randn",
    }
)

#: builtins / methods that transform a value without laundering its taint
_PASSTHROUGH = frozenset(
    {
        "str",
        "repr",
        "format",
        "bytes",
        "int",
        "float",
        "bool",
        "hex",
        "oct",
        "abs",
        "round",
        "min",
        "max",
        "sum",
        "len",
        "tuple",
        "list",
        "set",
        "frozenset",
        "dict",
        "sorted",
        "reversed",
        "join",
        "encode",
        "decode",
        "strip",
        "lstrip",
        "rstrip",
        "lower",
        "upper",
        "replace",
        "zfill",
        "hexdigest",
        "digest",
        "isoformat",
        "timestamp",
        "strftime",
    }
)

_MAX_VIA = 4


@dataclass(frozen=True)
class Taint:
    """One nondeterminism source, plus the call chain it traveled."""

    kind: str
    source: str
    via: tuple[str, ...] = ()

    def describe(self) -> str:
        text = self.source
        for hop in self.via:
            text += f" via {hop}()"
        return text


def _short(qualname: str) -> str:
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 1 else qualname


def call_source(call: ast.Call) -> Taint | None:
    """The taint a call expression introduces directly, if any."""
    parts = chain_of(call.func)
    if parts is None:
        return None
    tail = tuple(parts[-2:])
    if len(tail) == 2 and tail in _WALL_CLOCK_CALLS:
        return Taint(WALL_CLOCK, f"{tail[0]}.{tail[1]}()")
    if len(parts) >= 2 and parts[-2] == "random" and parts[-1] in _RANDOM_FNS:
        prefix = ".".join(parts[:-1])
        return Taint(UNSEEDED_RANDOM, f"{prefix}.{parts[-1]}()")
    if tail == ("os", "getenv") or tail == ("environ", "get"):
        return Taint(ENVIRON, f"{tail[0]}.{tail[1]}()")
    if parts == ["id"]:
        return Taint(OBJECT_IDENTITY, "id()")
    return None


def _subscript_source(node: ast.Subscript) -> Taint | None:
    parts = chain_of(node.value)
    if parts is not None and parts[-1] == "environ":
        return Taint(ENVIRON, "os.environ[...]")
    return None


@dataclass
class _Summary:
    """Interprocedural facts about one function."""

    returns: dict[tuple[str, str], Taint]
    param_flows: set[str]


class TaintAnalysis:
    """Run the dataflow once over a :class:`Program`; query per expression."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self._summaries: dict[str, _Summary] = {
            qualname: _Summary(returns={}, param_flows=set())
            for qualname in program.functions
        }
        self._locals: dict[str, dict[str, set[Taint]]] = {}
        self._run()

    # ------------------------------------------------------------------
    # public queries
    # ------------------------------------------------------------------
    def taints_of(self, fn: FunctionInfo, expr: ast.expr) -> set[Taint]:
        """Source taints an expression can carry inside ``fn`` (final state)."""
        env = self._locals.get(fn.qualname, {})
        return {
            taint
            for taint in self._eval(fn, expr, env)
            if taint.kind != _PARAM
        }

    def returns_of(self, qualname: str) -> set[Taint]:
        summary = self._summaries.get(qualname)
        if summary is None:
            return set()
        return {
            taint
            for taint in summary.returns.values()
            if taint.kind != _PARAM
        }

    # ------------------------------------------------------------------
    # fixpoint
    # ------------------------------------------------------------------
    def _run(self) -> None:
        functions = list(self.program.functions.values())
        for _ in range(len(functions) + 1):
            changed = False
            for fn in functions:
                env, returns = self._analyze(fn)
                self._locals[fn.qualname] = env
                summary = self._summaries[fn.qualname]
                for taint in returns:
                    key = (taint.kind, taint.source)
                    if key not in summary.returns:
                        summary.returns[key] = taint
                        changed = True
                    if (
                        taint.kind == _PARAM
                        and taint.source not in summary.param_flows
                    ):
                        summary.param_flows.add(taint.source)
                        changed = True
            if not changed:
                break

    def _analyze(
        self, fn: FunctionInfo
    ) -> tuple[dict[str, set[Taint]], set[Taint]]:
        env: dict[str, set[Taint]] = {}
        arguments = fn.node.args
        for arg in [
            *arguments.posonlyargs,
            *arguments.args,
            *arguments.kwonlyargs,
        ]:
            if arg.arg != "self":
                env[arg.arg] = {Taint(_PARAM, arg.arg)}
        returns: set[Taint] = set()
        # two passes make simple loop-carried flows converge locally
        for _ in range(2):
            self._exec_block(fn, fn.node.body, env, returns)
        return env, returns

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def _exec_block(
        self,
        fn: FunctionInfo,
        statements: list[ast.stmt],
        env: dict[str, set[Taint]],
        returns: set[Taint],
    ) -> None:
        for statement in statements:
            self._exec(fn, statement, env, returns)

    def _exec(
        self,
        fn: FunctionInfo,
        statement: ast.stmt,
        env: dict[str, set[Taint]],
        returns: set[Taint],
    ) -> None:
        if isinstance(statement, ast.Assign):
            taints = self._eval(fn, statement.value, env)
            for target in statement.targets:
                self._assign(target, taints, env)
        elif isinstance(statement, ast.AugAssign):
            taints = self._eval(fn, statement.value, env)
            taints |= self._eval(fn, statement.target, env)
            self._assign(statement.target, taints, env)
        elif isinstance(statement, ast.AnnAssign):
            if statement.value is not None:
                self._assign(
                    statement.target,
                    self._eval(fn, statement.value, env),
                    env,
                )
        elif isinstance(statement, ast.Return):
            if statement.value is not None:
                returns |= self._eval(fn, statement.value, env)
        elif isinstance(statement, (ast.If,)):
            self._exec_block(fn, statement.body, env, returns)
            self._exec_block(fn, statement.orelse, env, returns)
        elif isinstance(statement, (ast.For, ast.AsyncFor)):
            self._assign(
                statement.target, self._eval(fn, statement.iter, env), env
            )
            self._exec_block(fn, statement.body, env, returns)
            self._exec_block(fn, statement.orelse, env, returns)
        elif isinstance(statement, ast.While):
            self._exec_block(fn, statement.body, env, returns)
            self._exec_block(fn, statement.orelse, env, returns)
        elif isinstance(statement, (ast.With, ast.AsyncWith)):
            for item in statement.items:
                if item.optional_vars is not None:
                    self._assign(
                        item.optional_vars,
                        self._eval(fn, item.context_expr, env),
                        env,
                    )
            self._exec_block(fn, statement.body, env, returns)
        elif isinstance(statement, ast.Try):
            self._exec_block(fn, statement.body, env, returns)
            for handler in statement.handlers:
                self._exec_block(fn, handler.body, env, returns)
            self._exec_block(fn, statement.orelse, env, returns)
            self._exec_block(fn, statement.finalbody, env, returns)
        elif isinstance(statement, ast.Expr):
            self._eval(fn, statement.value, env)
        # nested defs/classes are separate analysis units (or out of scope)

    def _assign(
        self,
        target: ast.expr,
        taints: set[Taint],
        env: dict[str, set[Taint]],
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, taints, env)
            return
        if isinstance(target, ast.Starred):
            self._assign(target.value, taints, env)
            return
        name: str | None = None
        if isinstance(target, ast.Name):
            name = target.id
        else:
            parts = chain_of(target)
            if parts is not None:
                name = ".".join(parts)
        if name is not None:
            env.setdefault(name, set())
            env[name] |= taints

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def _eval(
        self,
        fn: FunctionInfo,
        expr: ast.expr,
        env: dict[str, set[Taint]],
    ) -> set[Taint]:
        if isinstance(expr, ast.Call):
            return self._eval_call(fn, expr, env)
        if isinstance(expr, ast.Name):
            return set(env.get(expr.id, ()))
        if isinstance(expr, ast.Attribute):
            parts = chain_of(expr)
            if parts is not None:
                dotted = ".".join(parts)
                if dotted in env:
                    return set(env[dotted])
            return self._eval(fn, expr.value, env)
        if isinstance(expr, ast.Subscript):
            source = _subscript_source(expr)
            found = {source} if source is not None else set()
            return found | self._eval(fn, expr.value, env)
        if isinstance(expr, ast.BinOp):
            return self._eval(fn, expr.left, env) | self._eval(
                fn, expr.right, env
            )
        if isinstance(expr, ast.UnaryOp):
            return self._eval(fn, expr.operand, env)
        if isinstance(expr, ast.BoolOp):
            out: set[Taint] = set()
            for value in expr.values:
                out |= self._eval(fn, value, env)
            return out
        if isinstance(expr, ast.Compare):
            return set()  # comparison results are booleans, not identities
        if isinstance(expr, ast.IfExp):
            return self._eval(fn, expr.body, env) | self._eval(
                fn, expr.orelse, env
            )
        if isinstance(expr, ast.JoinedStr):
            out = set()
            for value in expr.values:
                if isinstance(value, ast.FormattedValue):
                    out |= self._eval(fn, value.value, env)
            return out
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            out = set()
            for element in expr.elts:
                out |= self._eval(fn, element, env)
            return out
        if isinstance(expr, ast.Dict):
            out = set()
            for key in expr.keys:
                if key is not None:
                    out |= self._eval(fn, key, env)
            for value in expr.values:
                out |= self._eval(fn, value, env)
            return out
        if isinstance(expr, ast.Await):
            return self._eval(fn, expr.value, env)
        if isinstance(expr, ast.Starred):
            return self._eval(fn, expr.value, env)
        if isinstance(expr, ast.NamedExpr):
            taints = self._eval(fn, expr.value, env)
            self._assign(expr.target, taints, env)
            return taints
        return set()

    def _eval_call(
        self,
        fn: FunctionInfo,
        call: ast.Call,
        env: dict[str, set[Taint]],
    ) -> set[Taint]:
        source = call_source(call)
        if source is not None:
            return {source}
        out: set[Taint] = set()
        callee = self.program.callee_of(call)
        if callee is not None and callee in self._summaries:
            summary = self._summaries[callee]
            hop = _short(callee)
            for taint in summary.returns.values():
                if taint.kind == _PARAM:
                    continue
                if len(taint.via) < _MAX_VIA:
                    out.add(
                        Taint(taint.kind, taint.source, (hop,) + taint.via)
                    )
                else:
                    out.add(taint)
            if summary.param_flows:
                out |= self._flowing_arguments(fn, call, callee, env)
            return out
        parts = chain_of(call.func)
        if parts is not None and parts[-1] in _PASSTHROUGH:
            for arg in call.args:
                out |= self._eval(fn, arg, env)
            for keyword in call.keywords:
                out |= self._eval(fn, keyword.value, env)
            if isinstance(call.func, ast.Attribute):
                # method style: `"-".join(xs)`, `stamp.isoformat()`
                out |= self._eval(fn, call.func.value, env)
        return out

    def _flowing_arguments(
        self,
        fn: FunctionInfo,
        call: ast.Call,
        callee: str,
        env: dict[str, set[Taint]],
    ) -> set[Taint]:
        """Taints of the arguments bound to flow-through parameters."""
        info = self.program.functions[callee]
        summary = self._summaries[callee]
        parameters = [arg.arg for arg in info.node.args.args]
        offset = 1 if parameters[:1] == ["self"] else 0
        out: set[Taint] = set()
        for index, arg in enumerate(call.args):
            position = index + offset
            if position < len(parameters) and (
                parameters[position] in summary.param_flows
            ):
                out |= self._eval(fn, arg, env)
        for keyword in call.keywords:
            if keyword.arg is None or keyword.arg in summary.param_flows:
                out |= self._eval(fn, keyword.value, env)
        return out
