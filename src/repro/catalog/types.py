"""Type hierarchy: a DAG of types related by the subtype relation.

The paper (Section 3.1) models types as nodes of a directed acyclic graph
where an edge ``T2 -> T1`` denotes ``T1 ⊆ T2`` (T1 is a subtype of T2).  We
store the DAG with parent and child adjacency dictionaries and provide the
transitive queries the annotator needs: ancestor/descendant closures,
``is_subtype`` (``⊆*``), root discovery and minimal-element filtering (used by
the LCA baseline).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.catalog.errors import CycleError, DuplicateIdError, UnknownIdError

#: Conventional id of the synthetic root type that reaches all other types.
ROOT_TYPE_ID = "type:entity"


@dataclass
class Type:
    """A single type label.

    Attributes:
        type_id: Unique identifier, e.g. ``"type:physicist"``.
        lemmas: Alternative textual descriptions of the type (``L(T)`` in the
            paper).  A lemma is a short token sequence such as
            ``"english-language films"``.
    """

    type_id: str
    lemmas: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.type_id:
            raise ValueError("type_id must be a non-empty string")
        self.lemmas = tuple(self.lemmas)


class TypeHierarchy:
    """A mutable DAG of :class:`Type` nodes with subtype edges.

    Edges are expressed as ``add_subtype(child, parent)`` meaning
    ``child ⊆ parent``.  Cycles are rejected eagerly.
    """

    def __init__(self) -> None:
        self._types: dict[str, Type] = {}
        self._parents: dict[str, set[str]] = {}
        self._children: dict[str, set[str]] = {}

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_type(self, type_id: str, lemmas: Iterable[str] = ()) -> Type:
        """Register a new type; raises :class:`DuplicateIdError` if present."""
        if type_id in self._types:
            raise DuplicateIdError("type", type_id)
        node = Type(type_id=type_id, lemmas=tuple(lemmas))
        self._types[type_id] = node
        self._parents[type_id] = set()
        self._children[type_id] = set()
        return node

    def add_lemmas(self, type_id: str, lemmas: Iterable[str]) -> None:
        """Append lemmas to an existing type (duplicates removed, order kept)."""
        node = self.get(type_id)
        merged = list(node.lemmas)
        for lemma in lemmas:
            if lemma not in merged:
                merged.append(lemma)
        node.lemmas = tuple(merged)

    def add_subtype(self, child: str, parent: str) -> None:
        """Add an edge asserting ``child ⊆ parent``.

        Raises:
            UnknownIdError: if either endpoint is unregistered.
            CycleError: if the edge would create a directed cycle.
        """
        if child not in self._types:
            raise UnknownIdError("type", child)
        if parent not in self._types:
            raise UnknownIdError("type", parent)
        if child == parent or self.is_subtype(parent, child):
            raise CycleError(child, parent)
        self._parents[child].add(parent)
        self._children[parent].add(child)

    def remove_subtype(self, child: str, parent: str) -> bool:
        """Remove a subtype edge; returns ``True`` if the edge existed."""
        if parent in self._parents.get(child, ()):
            self._parents[child].discard(parent)
            self._children[parent].discard(child)
            return True
        return False

    def ensure_root(self, root_id: str = ROOT_TYPE_ID) -> str:
        """Create (if needed) a root type reaching every current root.

        Mirrors the paper's note: "If not already present, we can create a
        root type that reaches all other types."
        """
        if root_id not in self._types:
            self.add_type(root_id, lemmas=("entity", "thing"))
        for type_id in list(self._types):
            if type_id != root_id and not self._parents[type_id]:
                self.add_subtype(type_id, root_id)
        return root_id

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, type_id: str) -> bool:
        return type_id in self._types

    def __len__(self) -> int:
        return len(self._types)

    def __iter__(self) -> Iterator[str]:
        return iter(self._types)

    def get(self, type_id: str) -> Type:
        try:
            return self._types[type_id]
        except KeyError:
            raise UnknownIdError("type", type_id) from None

    def lemmas(self, type_id: str) -> tuple[str, ...]:
        return self.get(type_id).lemmas

    def parents(self, type_id: str) -> frozenset[str]:
        """Immediate supertypes of ``type_id``."""
        if type_id not in self._types:
            raise UnknownIdError("type", type_id)
        return frozenset(self._parents[type_id])

    def children(self, type_id: str) -> frozenset[str]:
        """Immediate subtypes of ``type_id``."""
        if type_id not in self._types:
            raise UnknownIdError("type", type_id)
        return frozenset(self._children[type_id])

    def roots(self) -> frozenset[str]:
        """Types with no parent."""
        return frozenset(t for t in self._types if not self._parents[t])

    def leaves(self) -> frozenset[str]:
        """Types with no child type (entities may still attach to them)."""
        return frozenset(t for t in self._types if not self._children[t])

    def ancestors(self, type_id: str, include_self: bool = False) -> set[str]:
        """All types ``A`` with ``type_id ⊆* A`` (``⊆+`` if not include_self)."""
        if type_id not in self._types:
            raise UnknownIdError("type", type_id)
        seen: set[str] = {type_id} if include_self else set()
        queue = deque(self._parents[type_id])
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            seen.add(current)
            queue.extend(self._parents[current])
        if not include_self:
            seen.discard(type_id)
        return seen

    def descendants(self, type_id: str, include_self: bool = False) -> set[str]:
        """All types ``D`` with ``D ⊆* type_id`` (``⊆+`` if not include_self)."""
        if type_id not in self._types:
            raise UnknownIdError("type", type_id)
        seen: set[str] = {type_id} if include_self else set()
        queue = deque(self._children[type_id])
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            seen.add(current)
            queue.extend(self._children[current])
        if not include_self:
            seen.discard(type_id)
        return seen

    def is_subtype(self, child: str, parent: str) -> bool:
        """``child ⊆* parent`` — reflexive-transitive subtype test."""
        if child not in self._types:
            raise UnknownIdError("type", child)
        if parent not in self._types:
            raise UnknownIdError("type", parent)
        if child == parent:
            return True
        queue = deque(self._parents[child])
        seen: set[str] = set()
        while queue:
            current = queue.popleft()
            if current == parent:
                return True
            if current in seen:
                continue
            seen.add(current)
            queue.extend(self._parents[current])
        return False

    def hops_up(self, child: str, parent: str) -> int | None:
        """Number of ⊆ edges on the shortest upward path child → parent.

        Returns ``None`` when ``parent`` is not reachable from ``child``.
        ``hops_up(t, t) == 0``.
        """
        if child not in self._types:
            raise UnknownIdError("type", child)
        if parent not in self._types:
            raise UnknownIdError("type", parent)
        if child == parent:
            return 0
        queue: deque[tuple[str, int]] = deque((p, 1) for p in self._parents[child])
        seen: set[str] = set()
        while queue:
            current, depth = queue.popleft()
            if current == parent:
                return depth
            if current in seen:
                continue
            seen.add(current)
            queue.extend((p, depth + 1) for p in self._parents[current])
        return None

    def minimal_elements(self, type_ids: Iterable[str]) -> set[str]:
        """Subset of ``type_ids`` with no *other* member as a descendant.

        Used by the LCA baseline (Section 4.5.1): "any type in this set that
        does not have a descendant also in this set is a candidate".
        """
        candidates = set(type_ids)
        minimal: set[str] = set()
        for type_id in candidates:
            descendants = self.descendants(type_id)
            if not (descendants & candidates):
                minimal.add(type_id)
        return minimal

    def topological_order(self) -> list[str]:
        """Types ordered parents-before-children (stable w.r.t. insertion)."""
        in_degree = {t: len(self._parents[t]) for t in self._types}
        queue = deque(t for t in self._types if in_degree[t] == 0)
        order: list[str] = []
        while queue:
            current = queue.popleft()
            order.append(current)
            for child in sorted(self._children[current]):
                in_degree[child] -= 1
                if in_degree[child] == 0:
                    queue.append(child)
        if len(order) != len(self._types):
            raise CycleError("<unknown>", "<unknown>")
        return order

    def all_types(self) -> list[Type]:
        return list(self._types.values())
