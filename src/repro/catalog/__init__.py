"""Catalog substrate: types, entities, binary relations and their lemmas.

This package models the knowledge catalog of the paper (Section 3.1):

* a **type hierarchy** — a DAG of types connected by the subtype relation
  ``T1 <= T2`` (:mod:`repro.catalog.types`),
* an **entity store** — entities attached to one or more direct types, each
  carrying a set of textual lemmas (:mod:`repro.catalog.entities`),
* a **relation store** — named binary relations with a type schema
  ``B(T1, T2)`` and a set of ground tuples ``B(E1, E2)``
  (:mod:`repro.catalog.relations`),
* the :class:`~repro.catalog.catalog.Catalog` facade tying them together with
  the derived quantities used by the annotator: ``E(T)``, ``T(E)``,
  ``dist(E, T)``, least common ancestors and the missing-link relatedness
  measure,
* JSON/TSV persistence (:mod:`repro.catalog.io`),
* a fluent :class:`~repro.catalog.builder.CatalogBuilder`, and
* a seeded synthetic YAGO-substitute generator
  (:mod:`repro.catalog.synthetic`) used because the YAGO 2008-w40-2 dump is
  not available offline (see DESIGN.md section 3).
"""

from repro.catalog.builder import CatalogBuilder
from repro.catalog.catalog import Catalog
from repro.catalog.entities import Entity, EntityStore
from repro.catalog.errors import CatalogError, CycleError, UnknownIdError
from repro.catalog.io import load_catalog_json, save_catalog_json
from repro.catalog.relations import Cardinality, Relation, RelationStore
from repro.catalog.synthetic import SyntheticCatalogConfig, SyntheticCatalogGenerator
from repro.catalog.types import Type, TypeHierarchy

__all__ = [
    "Catalog",
    "CatalogBuilder",
    "CatalogError",
    "Cardinality",
    "CycleError",
    "Entity",
    "EntityStore",
    "Relation",
    "RelationStore",
    "SyntheticCatalogConfig",
    "SyntheticCatalogGenerator",
    "Type",
    "TypeHierarchy",
    "UnknownIdError",
    "load_catalog_json",
    "save_catalog_json",
]
