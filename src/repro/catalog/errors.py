"""Exception hierarchy for the catalog substrate."""


class CatalogError(Exception):
    """Base class for all catalog-layer errors."""


class UnknownIdError(CatalogError, KeyError):
    """Raised when a type, entity or relation id is not present in the catalog."""

    def __init__(self, kind: str, identifier: str):
        self.kind = kind
        self.identifier = identifier
        super().__init__(f"unknown {kind} id: {identifier!r}")


class DuplicateIdError(CatalogError, ValueError):
    """Raised when an id is registered twice."""

    def __init__(self, kind: str, identifier: str):
        self.kind = kind
        self.identifier = identifier
        super().__init__(f"duplicate {kind} id: {identifier!r}")


class CycleError(CatalogError, ValueError):
    """Raised when a subtype edge would create a cycle in the type DAG."""

    def __init__(self, child: str, parent: str):
        self.child = child
        self.parent = parent
        super().__init__(
            f"adding subtype edge {child!r} <= {parent!r} would create a cycle"
        )


class SchemaError(CatalogError, ValueError):
    """Raised when a relation tuple violates the relation's type schema."""
