"""Fluent builder for assembling catalogs in tests, examples and loaders."""

from __future__ import annotations

from typing import Iterable

from repro.catalog.catalog import Catalog
from repro.catalog.relations import Cardinality
from repro.catalog.types import ROOT_TYPE_ID


class CatalogBuilder:
    """Incrementally build a :class:`~repro.catalog.catalog.Catalog`.

    Example::

        catalog = (
            CatalogBuilder()
            .type("type:person", "person")
            .type("type:physicist", "physicist", parents=["type:person"])
            .entity("ent:einstein", ["Albert Einstein", "Einstein"],
                    types=["type:physicist"])
            .relation("rel:born_at", "type:person", "type:place",
                      lemmas=["born at"])
            .fact("rel:born_at", "ent:einstein", "ent:ulm")
            .build()
        )

    ``type``/``entity`` accept parents/types that are declared later; edges
    are resolved at :meth:`build` time so declaration order never matters.
    """

    def __init__(self, name: str = "catalog") -> None:
        self._name = name
        self._types: list[tuple[str, tuple[str, ...], tuple[str, ...]]] = []
        self._entities: list[tuple[str, tuple[str, ...], tuple[str, ...]]] = []
        self._relations: list[tuple[str, str, str, tuple[str, ...], Cardinality]] = []
        self._facts: list[tuple[str, str, str]] = []
        self._ensure_root = True

    def type(
        self,
        type_id: str,
        *lemmas: str,
        parents: Iterable[str] = (),
    ) -> "CatalogBuilder":
        """Declare a type with lemmas and optional parent types."""
        self._types.append((type_id, tuple(lemmas), tuple(parents)))
        return self

    def entity(
        self,
        entity_id: str,
        lemmas: Iterable[str] = (),
        types: Iterable[str] = (),
    ) -> "CatalogBuilder":
        """Declare an entity with lemmas and direct types."""
        self._entities.append((entity_id, tuple(lemmas), tuple(types)))
        return self

    def relation(
        self,
        relation_id: str,
        subject_type: str,
        object_type: str,
        lemmas: Iterable[str] = (),
        cardinality: Cardinality | str = Cardinality.MANY_TO_MANY,
    ) -> "CatalogBuilder":
        """Declare a binary relation with its type schema."""
        cardinality = (
            Cardinality(cardinality) if isinstance(cardinality, str) else cardinality
        )
        self._relations.append(
            (relation_id, subject_type, object_type, tuple(lemmas), cardinality)
        )
        return self

    def fact(self, relation_id: str, subject: str, object_: str) -> "CatalogBuilder":
        """Declare a ground tuple ``relation_id(subject, object_)``."""
        self._facts.append((relation_id, subject, object_))
        return self

    def without_root(self) -> "CatalogBuilder":
        """Skip the automatic creation of a universal root type."""
        self._ensure_root = False
        return self

    def build(self) -> Catalog:
        """Materialise the catalog; validates all cross-references."""
        catalog = Catalog(name=self._name)
        for type_id, lemmas, _parents in self._types:
            catalog.types.add_type(type_id, lemmas)
        for type_id, _lemmas, parents in self._types:
            for parent in parents:
                catalog.types.add_subtype(type_id, parent)
        if self._ensure_root:
            catalog.types.ensure_root(ROOT_TYPE_ID)
        for entity_id, lemmas, types in self._entities:
            catalog.add_entity(entity_id, lemmas, types)
        for relation_id, subject_type, object_type, lemmas, card in self._relations:
            catalog.add_relation(
                relation_id, subject_type, object_type, lemmas, card
            )
        for relation_id, subject, object_ in self._facts:
            catalog.add_tuple(relation_id, subject, object_)
        return catalog
