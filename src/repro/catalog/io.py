"""JSON persistence for catalogs.

The on-disk format is a single JSON document with four arrays (types,
subtype edges are embedded as ``parents`` on each type, entities, relations
and facts).  It is intentionally close to the builder vocabulary so that a
saved catalog round-trips exactly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.catalog.builder import CatalogBuilder
from repro.catalog.catalog import Catalog

FORMAT_VERSION = 1


def catalog_to_dict(catalog: Catalog) -> dict[str, Any]:
    """Serialise a catalog to a JSON-compatible dictionary."""
    types = []
    for node in catalog.types.all_types():
        types.append(
            {
                "id": node.type_id,
                "lemmas": list(node.lemmas),
                "parents": sorted(catalog.types.parents(node.type_id)),
            }
        )
    entities = []
    for entity in catalog.entities.all_entities():
        entities.append(
            {
                "id": entity.entity_id,
                "lemmas": list(entity.lemmas),
                "types": list(entity.direct_types),
            }
        )
    relations = []
    facts = []
    for relation in catalog.relations.all_relations():
        relations.append(
            {
                "id": relation.relation_id,
                "subject_type": relation.subject_type,
                "object_type": relation.object_type,
                "lemmas": list(relation.lemmas),
                "cardinality": relation.cardinality.value,
            }
        )
        for subject, object_ in sorted(catalog.relations.tuples(relation.relation_id)):
            facts.append([relation.relation_id, subject, object_])
    return {
        "format_version": FORMAT_VERSION,
        "name": catalog.name,
        "types": types,
        "entities": entities,
        "relations": relations,
        "facts": facts,
    }


def catalog_from_dict(payload: dict[str, Any]) -> Catalog:
    """Deserialise a catalog from :func:`catalog_to_dict` output."""
    version = payload.get("format_version", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported catalog format version: {version}")
    builder = CatalogBuilder(name=payload.get("name", "catalog")).without_root()
    for type_entry in payload.get("types", []):
        builder.type(
            type_entry["id"],
            *type_entry.get("lemmas", []),
            parents=type_entry.get("parents", []),
        )
    for entity_entry in payload.get("entities", []):
        builder.entity(
            entity_entry["id"],
            lemmas=entity_entry.get("lemmas", []),
            types=entity_entry.get("types", []),
        )
    for relation_entry in payload.get("relations", []):
        builder.relation(
            relation_entry["id"],
            relation_entry["subject_type"],
            relation_entry["object_type"],
            lemmas=relation_entry.get("lemmas", []),
            cardinality=relation_entry.get("cardinality", "many_to_many"),
        )
    for relation_id, subject, object_ in payload.get("facts", []):
        builder.fact(relation_id, subject, object_)
    return builder.build()


def save_catalog_json(catalog: Catalog, path: str | Path) -> None:
    """Write the catalog to ``path`` as UTF-8 JSON."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(catalog_to_dict(catalog), handle, ensure_ascii=False, indent=1)


def load_catalog_json(path: str | Path) -> Catalog:
    """Read a catalog previously written by :func:`save_catalog_json`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return catalog_from_dict(payload)
