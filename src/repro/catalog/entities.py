"""Entity store: catalog entities, their lemmas and direct type memberships.

An entity ``E`` is an instance of one or more types (``E ∈ T``); the
transitive closure ``E ∈+ T`` and the derived sets ``E(T)`` / ``T(E)`` are
computed by the :class:`~repro.catalog.catalog.Catalog` facade, which combines
this store with the type hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.catalog.errors import DuplicateIdError, UnknownIdError


@dataclass
class Entity:
    """A catalog entity.

    Attributes:
        entity_id: Unique identifier, e.g. ``"ent:albert_einstein"``.
        lemmas: Known surface forms (``L(E)``), e.g. ``("Albert Einstein",
            "Einstein", "A. Einstein")``.  Lemmas of different entities may
            coincide — that is precisely the ambiguity the annotator resolves.
        direct_types: The most specific types the entity is an instance of.
    """

    entity_id: str
    lemmas: tuple[str, ...] = field(default_factory=tuple)
    direct_types: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.entity_id:
            raise ValueError("entity_id must be a non-empty string")
        self.lemmas = tuple(self.lemmas)
        self.direct_types = tuple(self.direct_types)

    @property
    def primary_lemma(self) -> str:
        """The first (canonical) lemma, or the bare id when lemma-less."""
        return self.lemmas[0] if self.lemmas else self.entity_id


class EntityStore:
    """Mutable collection of :class:`Entity` objects indexed by id."""

    def __init__(self) -> None:
        self._entities: dict[str, Entity] = {}
        self._by_direct_type: dict[str, set[str]] = {}

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_entity(
        self,
        entity_id: str,
        lemmas: Iterable[str] = (),
        direct_types: Iterable[str] = (),
    ) -> Entity:
        if entity_id in self._entities:
            raise DuplicateIdError("entity", entity_id)
        entity = Entity(
            entity_id=entity_id,
            lemmas=tuple(lemmas),
            direct_types=tuple(direct_types),
        )
        self._entities[entity_id] = entity
        for type_id in entity.direct_types:
            self._by_direct_type.setdefault(type_id, set()).add(entity_id)
        return entity

    def add_lemmas(self, entity_id: str, lemmas: Iterable[str]) -> None:
        entity = self.get(entity_id)
        merged = list(entity.lemmas)
        for lemma in lemmas:
            if lemma not in merged:
                merged.append(lemma)
        entity.lemmas = tuple(merged)

    def add_direct_type(self, entity_id: str, type_id: str) -> None:
        """Attach an additional direct ``∈`` edge to an entity."""
        entity = self.get(entity_id)
        if type_id not in entity.direct_types:
            entity.direct_types = entity.direct_types + (type_id,)
            self._by_direct_type.setdefault(type_id, set()).add(entity_id)

    def remove_direct_type(self, entity_id: str, type_id: str) -> bool:
        """Drop a direct ``∈`` edge; returns ``True`` if it existed.

        Used by the synthetic generator to simulate the *missing link*
        incompleteness of socially-maintained catalogs (paper Section 4.2.3).
        """
        entity = self.get(entity_id)
        if type_id not in entity.direct_types:
            return False
        entity.direct_types = tuple(t for t in entity.direct_types if t != type_id)
        members = self._by_direct_type.get(type_id)
        if members is not None:
            members.discard(entity_id)
        return True

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, entity_id: str) -> bool:
        return entity_id in self._entities

    def __len__(self) -> int:
        return len(self._entities)

    def __iter__(self) -> Iterator[str]:
        return iter(self._entities)

    def get(self, entity_id: str) -> Entity:
        try:
            return self._entities[entity_id]
        except KeyError:
            raise UnknownIdError("entity", entity_id) from None

    def lemmas(self, entity_id: str) -> tuple[str, ...]:
        return self.get(entity_id).lemmas

    def direct_types(self, entity_id: str) -> tuple[str, ...]:
        return self.get(entity_id).direct_types

    def direct_instances(self, type_id: str) -> frozenset[str]:
        """Entities with a *direct* ``∈`` edge to ``type_id``."""
        return frozenset(self._by_direct_type.get(type_id, frozenset()))

    def all_entities(self) -> list[Entity]:
        return list(self._entities.values())
