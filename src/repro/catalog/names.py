"""Vocabulary pools for the synthetic catalog generator.

The pools are deliberately *small* relative to the number of generated
entities: sharing surnames across persons and title words across works is
what produces the 7-8 candidate entities per cell that the paper reports
(Section 6.1.1).  All selection from these pools is done with a seeded RNG by
:mod:`repro.catalog.synthetic`, so the pools themselves carry no randomness.
"""

from __future__ import annotations

FIRST_NAMES: tuple[str, ...] = (
    "Alan", "Alice", "Amar", "Anita", "Arthur", "Asha", "Carl", "Clara",
    "David", "Diego", "Elena", "Emma", "Felix", "George", "Girija", "Hana",
    "Henry", "Irene", "Ivan", "James", "Jorge", "Julia", "Kenji", "Kiran",
    "Laura", "Leo", "Lin", "Maria", "Meera", "Nadia", "Nikhil", "Nora",
    "Omar", "Paulo", "Priya", "Rahul", "Raj", "Rosa", "Samuel", "Sara",
    "Sunita", "Tomas", "Uma", "Victor", "Wei", "Yuki", "Zara", "Soumen",
)

SURNAMES: tuple[str, ...] = (
    "Abbott", "Baker", "Bell", "Bose", "Carter", "Chandra", "Chen", "Clark",
    "Costa", "Das", "Dixon", "Evans", "Fischer", "Fuentes", "Garcia", "Gupta",
    "Hart", "Hayashi", "Iyer", "Jain", "Kim", "Kumar", "Lane", "Lee",
    "Mehta", "Mills", "Moreau", "Nair", "Novak", "Okafor", "Park", "Patel",
    "Quinn", "Rao", "Reyes", "Rossi", "Roy", "Sato", "Shah", "Silva",
    "Singh", "Stone", "Suzuki", "Tanaka", "Varma", "Weber", "Wong", "Young",
)

TITLE_ADJECTIVES: tuple[str, ...] = (
    "Silent", "Golden", "Broken", "Hidden", "Crimson", "Distant", "Endless",
    "Fading", "Gentle", "Hollow", "Iron", "Lost", "Midnight", "Pale",
    "Quiet", "Restless", "Scarlet", "Shattered", "Burning", "Frozen",
    "Forgotten", "Wandering", "Winter", "Summer", "Ancient", "Electric",
)

TITLE_NOUNS: tuple[str, ...] = (
    "River", "Mountain", "Garden", "Mirror", "Shadow", "Harbor", "Letter",
    "Voyage", "Orchard", "Lantern", "Bridge", "Forest", "Island", "Tower",
    "Crown", "Compass", "Horizon", "Sparrow", "Tide", "Ember",
    "Archive", "Citadel", "Meridian", "Labyrinth", "Monsoon", "Aurora",
)

ALBUM_WORDS: tuple[str, ...] = (
    "Echoes", "Pulse", "Gravity", "Neon", "Static", "Bloom", "Drift",
    "Voltage", "Mosaic", "Prism", "Cascade", "Verve", "Tempo", "Solstice",
)

COUNTRIES: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("Veridia", ("Veridia", "Republic of Veridia")),
    ("Ostania", ("Ostania", "Ostanian Federation")),
    ("Meridova", ("Meridova",)),
    ("Kestrellia", ("Kestrellia", "Kingdom of Kestrellia")),
    ("Auremont", ("Auremont",)),
    ("Tavria", ("Tavria", "Tavrian Union")),
    ("Zephyra", ("Zephyra",)),
    ("Norhaven", ("Norhaven", "Norhaven Isles")),
    ("Calvessa", ("Calvessa",)),
    ("Drovania", ("Drovania", "Drovanian Republic")),
    ("Elmarra", ("Elmarra",)),
    ("Solvenia", ("Solvenia",)),
    ("Quorath", ("Quorath",)),
    ("Brinmore", ("Brinmore",)),
    ("Valtara", ("Valtara", "Valtaran State")),
    ("Iskendi", ("Iskendi",)),
    ("Morvalle", ("Morvalle",)),
    ("Thessia", ("Thessia",)),
    ("Lunara", ("Lunara",)),
    ("Pellago", ("Pellago", "Pellagan Islands")),
)

CITY_STEMS: tuple[str, ...] = (
    "Aldersgate", "Brookfield", "Caldera", "Dunmore", "Eastwick", "Fairhaven",
    "Glenrock", "Harwick", "Ironvale", "Jasperton", "Kingsmere", "Larkspur",
    "Mirefield", "Northgate", "Oakridge", "Pinecrest", "Quarrytown",
    "Ravenshollow", "Stonebridge", "Thornbury", "Umberton", "Vexford",
    "Westmoor", "Yarrowdale", "Zephyr Bay", "Cinderfall", "Duskvale",
    "Emberlyn", "Frostholm", "Gildenport",
)

LANGUAGES: tuple[str, ...] = (
    "Veridian", "Ostanic", "Meridovan", "Kestrel", "Auric", "Tavrish",
    "Zephyric", "Norhavenic", "Calvessan", "Drovan", "Elmarric", "Solvene",
    "Quorathi", "Brinmoric", "Valtaric", "Iskendian", "Morvallese",
    "Thessian", "Lunaric", "Pellagan",
)

CLUB_WORDS: tuple[str, ...] = (
    "United", "City", "Rovers", "Athletic", "Wanderers", "Rangers",
    "Dynamo", "Olympic", "Phoenix", "Sporting",
)

NATIONALITIES: tuple[str, ...] = (
    "Veridian", "Ostanian", "Meridovan", "Kestrellian", "Auremontese",
    "Tavrian",
)

DECADES: tuple[str, ...] = ("1950s", "1960s", "1970s", "1980s", "1990s", "2000s")

GENRES: tuple[str, ...] = ("drama", "comedy", "thriller", "mystery", "romance")
