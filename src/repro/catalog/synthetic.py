"""Seeded synthetic YAGO-substitute catalog generator.

The YAGO 2008-w40-2 dump used in the paper is not available offline, so we
generate a catalog with the same *structural* properties the paper's
algorithms exploit (DESIGN.md section 3):

* a WordNet-like spine of coarse types (person, work, place, ...) with
  Wikipedia-category-like fine types underneath ("Veridian actors",
  "1990s films", "cities in Tavria"),
* entities attached (``∈``) to the *fine* categories only, so coarse types are
  reachable transitively — exactly the structure that makes missing links
  hurt,
* lemma ambiguity: shared surnames, initials and surname-only mentions for
  persons, novel/film adaptation title collisions for works,
* binary relations matching the paper's search experiments (Appendix G):
  ``acted_in``, ``directed``, ``wrote``, ``official_language``, ``produced``,
  plus extra substrate relations (``born_in``, ``located_in``, ``plays_for``,
  ``album_by``) with realistic cardinalities,
* a *corrupted annotator view* of the catalog with a fraction of ``∈`` links,
  ``⊆`` links and relation tuples removed — the incompleteness that the
  paper's missing-link repair feature (Section 4.2.3) and Appendix F anecdote
  are about.

Everything is driven by one ``random.Random(seed)`` stream, so a config is a
complete, reproducible description of a world.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.catalog import names
from repro.catalog.catalog import Catalog
from repro.catalog.io import catalog_from_dict, catalog_to_dict
from repro.catalog.relations import Cardinality
from repro.catalog.types import ROOT_TYPE_ID

#: Person roles with sampling weight and header-friendly lemmas.
PERSON_ROLES: tuple[tuple[str, float, tuple[str, ...]], ...] = (
    ("actor", 0.26, ("actor", "actors", "film actor", "cast member")),
    ("director", 0.14, ("director", "film director", "directed by")),
    ("producer", 0.10, ("producer", "film producer", "produced by")),
    ("novelist", 0.16, ("novelist", "author", "writer", "written by")),
    ("musician", 0.10, ("musician", "recording artist", "performer")),
    ("footballer", 0.14, ("footballer", "soccer player", "player")),
    ("scientist", 0.10, ("scientist", "physicist", "researcher")),
)

#: Second roles compatible with a first role (multi-type entities).
COMPATIBLE_SECOND_ROLES: dict[str, tuple[str, ...]] = {
    "actor": ("director", "producer"),
    "director": ("producer", "actor"),
    "producer": ("director",),
    "novelist": ("scientist",),
    "musician": ("actor",),
    "footballer": (),
    "scientist": ("novelist",),
}


@dataclass
class SyntheticCatalogConfig:
    """Knobs for the generated world.  Defaults are test-scale (fast)."""

    seed: int = 7
    n_persons: int = 160
    n_movies: int = 80
    n_novels: int = 60
    n_albums: int = 40
    n_countries: int = 20
    cities_per_country: int = 2
    n_clubs: int = 16
    multi_role_prob: float = 0.18
    #: probability a person's lemma set includes "F. Surname"
    initial_lemma_prob: float = 0.6
    #: probability a person's lemma set includes bare "Surname"
    surname_lemma_prob: float = 0.5
    #: fraction of movies that share the exact title of a novel (adaptations)
    adaptation_fraction: float = 0.3
    actors_per_movie: tuple[int, int] = (2, 4)
    producers_per_movie: tuple[int, int] = (1, 2)
    languages_per_country: tuple[int, int] = (1, 2)
    born_in_prob: float = 0.8
    #: fraction of fine categories that get a *redundant alias* category with
    #: a nearly identical extension — socially-maintained catalogs are full
    #: of these ("American film actors" vs "Male actors from the United
    #: States"), and they are what makes over-specific type scoring (IDF
    #: alone, paper Figure 8) misfire
    alias_category_fraction: float = 0.0
    #: probability each member of an aliased category joins the alias too
    alias_member_prob: float = 0.85
    # --- annotator-view corruption (missing links) ---
    # Calibrated so the annotator's view is as incomplete as the paper's
    # YAGO snapshot behaves: LCA over-generalises on most columns while the
    # collective model's repair feature keeps specific types viable.
    drop_instance_link_prob: float = 0.15
    drop_subtype_link_prob: float = 0.08
    drop_tuple_prob: float = 0.15

    def validate(self) -> None:
        if self.n_countries > len(names.COUNTRIES):
            raise ValueError(
                f"n_countries={self.n_countries} exceeds the name pool "
                f"({len(names.COUNTRIES)})"
            )
        for probability in (
            self.multi_role_prob,
            self.initial_lemma_prob,
            self.surname_lemma_prob,
            self.adaptation_fraction,
            self.born_in_prob,
            self.alias_category_fraction,
            self.alias_member_prob,
            self.drop_instance_link_prob,
            self.drop_subtype_link_prob,
            self.drop_tuple_prob,
        ):
            if not 0.0 <= probability <= 1.0:
                raise ValueError(f"probability out of range: {probability}")


@dataclass
class SyntheticWorld:
    """Output of the generator.

    Attributes:
        full: The ground-truth catalog (complete links and tuples) — plays the
            role of "Wikipedia + DBPedia" truth in the paper's evaluation.
        annotator_view: The corrupted catalog the annotator works against —
            plays the role of the (incomplete) YAGO snapshot.
        config: The generating configuration.
        query_relations: The five Appendix-G relations present in the world.
    """

    full: Catalog
    annotator_view: Catalog
    config: SyntheticCatalogConfig
    query_relations: tuple[str, ...] = (
        "rel:acted_in",
        "rel:directed",
        "rel:official_language",
        "rel:produced",
        "rel:wrote",
    )


class SyntheticCatalogGenerator:
    """Builds a :class:`SyntheticWorld` from a :class:`SyntheticCatalogConfig`."""

    def __init__(self, config: SyntheticCatalogConfig | None = None) -> None:
        self.config = config if config is not None else SyntheticCatalogConfig()
        self.config.validate()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def generate(self) -> SyntheticWorld:
        rng = random.Random(self.config.seed)
        catalog = Catalog(name=f"synthetic-{self.config.seed}")
        self._build_type_spine(catalog)
        persons_by_role = self._build_persons(catalog, rng)
        movies, novels, albums = self._build_works(catalog, rng)
        countries, cities, languages = self._build_places(catalog, rng)
        clubs = self._build_clubs(catalog, rng)
        self._build_relations(
            catalog,
            rng,
            persons_by_role=persons_by_role,
            movies=movies,
            novels=novels,
            albums=albums,
            countries=countries,
            cities=cities,
            languages=languages,
            clubs=clubs,
        )
        self._add_alias_categories(catalog, rng)
        annotator_view = self._corrupt(catalog, rng)
        return SyntheticWorld(
            full=catalog,
            annotator_view=annotator_view,
            config=self.config,
        )

    # ------------------------------------------------------------------
    # type spine
    # ------------------------------------------------------------------
    def _build_type_spine(self, catalog: Catalog) -> None:
        types = catalog.types
        # A WordNet-like intermediate layer deepens the DAG so that the
        # distance features meaningfully separate specific types from the
        # root (YAGO's spine is many levels deep).
        types.add_type("type:causal_agent", ("causal agent", "agent"))
        types.add_type("type:creation", ("creation", "artifact"))
        types.add_type("type:region", ("region", "geographical area"))
        types.add_type("type:social_group", ("social group",))
        types.add_type("type:abstraction", ("abstraction",))

        types.add_type("type:person", ("person", "people", "name"))
        types.add_subtype("type:person", "type:causal_agent")
        types.add_type("type:work", ("work", "creative work"))
        types.add_subtype("type:work", "type:creation")
        types.add_type("type:place", ("place", "location"))
        types.add_subtype("type:place", "type:region")
        types.add_type("type:organization", ("organization", "organisation"))
        types.add_subtype("type:organization", "type:social_group")
        types.add_type("type:language", ("language", "tongue", "official language"))
        types.add_subtype("type:language", "type:abstraction")

        for nationality in names.NATIONALITIES:
            # An orthogonal per-nationality people category gives every
            # person a second direct parent, which is what lets the
            # missing-link relatedness repair (paper Section 4.2.3) fire when
            # a role link is dropped from the annotator view.
            category = f"type:cat:{nationality.lower()}_people"
            types.add_type(category, (f"{nationality} people",))
            types.add_subtype(category, "type:person")
        for role, _weight, lemmas in PERSON_ROLES:
            types.add_type(f"type:{role}", lemmas)
            types.add_subtype(f"type:{role}", "type:person")
            for nationality in names.NATIONALITIES:
                category = f"type:cat:{nationality.lower()}_{role}s"
                types.add_type(category, (f"{nationality} {role}s",))
                types.add_subtype(category, f"type:{role}")

        types.add_type("type:movie", ("movie", "film", "motion picture", "title"))
        types.add_subtype("type:movie", "type:work")
        types.add_type("type:novel", ("novel", "book", "title"))
        types.add_subtype("type:novel", "type:work")
        types.add_type("type:album", ("album", "record", "LP"))
        types.add_subtype("type:album", "type:work")
        for decade in names.DECADES:
            for kind in ("film", "novel", "album"):
                category = f"type:cat:{decade}_{kind}s"
                types.add_type(category, (f"{decade} {kind}s",))
                types.add_subtype(category, f"type:{'movie' if kind == 'film' else kind}")
        for genre in names.GENRES:
            for kind in ("film", "novel"):
                category = f"type:cat:{genre}_{kind}s"
                types.add_type(category, (f"{genre} {kind}s",))
                types.add_subtype(category, f"type:{'movie' if kind == 'film' else kind}")

        types.add_type("type:country", ("country", "nation", "state"))
        types.add_subtype("type:country", "type:place")
        types.add_type("type:city", ("city", "town", "birthplace"))
        types.add_subtype("type:city", "type:place")

        types.add_type("type:club", ("football club", "club", "team"))
        types.add_subtype("type:club", "type:organization")

        types.ensure_root(ROOT_TYPE_ID)

    # ------------------------------------------------------------------
    # entities
    # ------------------------------------------------------------------
    def _sample_roles(self, rng: random.Random) -> list[str]:
        roles = [role for role, _w, _l in PERSON_ROLES]
        weights = [w for _r, w, _l in PERSON_ROLES]
        first = rng.choices(roles, weights=weights, k=1)[0]
        chosen = [first]
        if rng.random() < self.config.multi_role_prob:
            extras = COMPATIBLE_SECOND_ROLES.get(first, ())
            if extras:
                chosen.append(rng.choice(extras))
        return chosen

    def _person_lemmas(
        self, rng: random.Random, first: str, surname: str
    ) -> list[str]:
        lemmas = [f"{first} {surname}"]
        if rng.random() < self.config.initial_lemma_prob:
            lemmas.append(f"{first[0]}. {surname}")
        if rng.random() < self.config.surname_lemma_prob:
            lemmas.append(surname)
        return lemmas

    def _build_persons(
        self, catalog: Catalog, rng: random.Random
    ) -> dict[str, list[str]]:
        persons_by_role: dict[str, list[str]] = {
            role: [] for role, _w, _l in PERSON_ROLES
        }
        used_names: set[tuple[str, str]] = set()
        for index in range(self.config.n_persons):
            first = rng.choice(names.FIRST_NAMES)
            surname = rng.choice(names.SURNAMES)
            # Allow genuine full-name collisions occasionally but keep ids unique.
            if (first, surname) in used_names and rng.random() < 0.7:
                first = rng.choice(names.FIRST_NAMES)
            used_names.add((first, surname))
            entity_id = f"ent:person:{index:04d}"
            roles = self._sample_roles(rng)
            nationality = rng.choice(names.NATIONALITIES)
            direct_types = [
                f"type:cat:{nationality.lower()}_{role}s" for role in roles
            ]
            direct_types.append(f"type:cat:{nationality.lower()}_people")
            catalog.add_entity(
                entity_id,
                lemmas=self._person_lemmas(rng, first, surname),
                direct_types=direct_types,
            )
            for role in roles:
                persons_by_role[role].append(entity_id)
        return persons_by_role

    def _work_title(self, rng: random.Random) -> str:
        pattern = rng.randrange(3)
        adjective = rng.choice(names.TITLE_ADJECTIVES)
        noun = rng.choice(names.TITLE_NOUNS)
        if pattern == 0:
            return f"The {adjective} {noun}"
        if pattern == 1:
            second = rng.choice(names.TITLE_NOUNS)
            return f"{noun} of the {second}"
        return f"A {adjective} {noun}"

    def _build_works(
        self, catalog: Catalog, rng: random.Random
    ) -> tuple[list[str], list[str], list[str]]:
        novels: list[str] = []
        novel_titles: list[str] = []
        for index in range(self.config.n_novels):
            title = self._work_title(rng)
            entity_id = f"ent:novel:{index:04d}"
            decade = rng.choice(names.DECADES)
            genre = rng.choice(names.GENRES)
            catalog.add_entity(
                entity_id,
                lemmas=[title],
                direct_types=[
                    f"type:cat:{decade}_novels",
                    f"type:cat:{genre}_novels",
                ],
            )
            novels.append(entity_id)
            novel_titles.append(title)

        movies: list[str] = []
        n_adaptations = int(self.config.adaptation_fraction * self.config.n_movies)
        for index in range(self.config.n_movies):
            if index < n_adaptations and novel_titles:
                title = rng.choice(novel_titles)
            else:
                title = self._work_title(rng)
            entity_id = f"ent:movie:{index:04d}"
            decade = rng.choice(names.DECADES)
            genre = rng.choice(names.GENRES)
            catalog.add_entity(
                entity_id,
                lemmas=[title],
                direct_types=[
                    f"type:cat:{decade}_films",
                    f"type:cat:{genre}_films",
                ],
            )
            movies.append(entity_id)

        albums: list[str] = []
        for index in range(self.config.n_albums):
            word = rng.choice(names.ALBUM_WORDS)
            second = rng.choice(names.TITLE_NOUNS)
            title = f"{word} {second}" if rng.random() < 0.5 else word
            entity_id = f"ent:album:{index:04d}"
            decade = rng.choice(names.DECADES)
            catalog.add_entity(
                entity_id,
                lemmas=[title],
                direct_types=[f"type:cat:{decade}_albums"],
            )
            albums.append(entity_id)
        return movies, novels, albums

    def _build_places(
        self, catalog: Catalog, rng: random.Random
    ) -> tuple[list[str], list[str], list[str]]:
        countries: list[str] = []
        for index in range(self.config.n_countries):
            country_name, lemmas = names.COUNTRIES[index]
            entity_id = f"ent:country:{index:04d}"
            catalog.add_entity(entity_id, lemmas=lemmas, direct_types=["type:country"])
            # A per-country city category mirrors "Universities in Toronto".
            category = f"type:cat:cities_in_{country_name.lower()}"
            catalog.types.add_type(category, (f"cities in {country_name}",))
            catalog.types.add_subtype(category, "type:city")
            countries.append(entity_id)

        cities: list[str] = []
        stems = list(names.CITY_STEMS)
        rng.shuffle(stems)
        city_index = 0
        for country_index, _country_id in enumerate(countries):
            country_name = names.COUNTRIES[country_index][0]
            for _ in range(self.config.cities_per_country):
                stem = stems[city_index % len(stems)]
                suffix = "" if city_index < len(stems) else f" {city_index // len(stems) + 1}"
                entity_id = f"ent:city:{city_index:04d}"
                catalog.add_entity(
                    entity_id,
                    lemmas=[f"{stem}{suffix}"],
                    direct_types=[f"type:cat:cities_in_{country_name.lower()}"],
                )
                cities.append(entity_id)
                city_index += 1

        languages: list[str] = []
        for index in range(min(self.config.n_countries, len(names.LANGUAGES))):
            language = names.LANGUAGES[index]
            entity_id = f"ent:language:{index:04d}"
            catalog.add_entity(
                entity_id,
                lemmas=[language, f"{language} language"],
                direct_types=["type:language"],
            )
            languages.append(entity_id)
        return countries, cities, languages

    def _build_clubs(self, catalog: Catalog, rng: random.Random) -> list[str]:
        clubs: list[str] = []
        for index in range(self.config.n_clubs):
            stem = rng.choice(names.CITY_STEMS)
            word = rng.choice(names.CLUB_WORDS)
            entity_id = f"ent:club:{index:04d}"
            catalog.add_entity(
                entity_id,
                lemmas=[f"{stem} {word}", stem],
                direct_types=["type:club"],
            )
            clubs.append(entity_id)
        return clubs

    # ------------------------------------------------------------------
    # relations
    # ------------------------------------------------------------------
    def _build_relations(
        self,
        catalog: Catalog,
        rng: random.Random,
        persons_by_role: dict[str, list[str]],
        movies: list[str],
        novels: list[str],
        albums: list[str],
        countries: list[str],
        cities: list[str],
        languages: list[str],
        clubs: list[str],
    ) -> None:
        catalog.add_relation(
            "rel:acted_in",
            "type:movie",
            "type:actor",
            lemmas=("acted in", "cast", "starring"),
        )
        catalog.add_relation(
            "rel:directed",
            "type:movie",
            "type:director",
            lemmas=("directed", "directed by", "director of"),
            cardinality=Cardinality.MANY_TO_ONE,
        )
        catalog.add_relation(
            "rel:produced",
            "type:movie",
            "type:producer",
            lemmas=("produced", "produced by"),
        )
        catalog.add_relation(
            "rel:wrote",
            "type:novel",
            "type:novelist",
            lemmas=("wrote", "written by", "author of"),
            cardinality=Cardinality.MANY_TO_ONE,
        )
        catalog.add_relation(
            "rel:official_language",
            "type:country",
            "type:language",
            lemmas=("official language", "language spoken"),
        )
        catalog.add_relation(
            "rel:born_in",
            "type:person",
            "type:city",
            lemmas=("born in", "birthplace"),
            cardinality=Cardinality.MANY_TO_ONE,
        )
        catalog.add_relation(
            "rel:located_in",
            "type:city",
            "type:country",
            lemmas=("located in", "country"),
            cardinality=Cardinality.MANY_TO_ONE,
        )
        catalog.add_relation(
            "rel:plays_for",
            "type:footballer",
            "type:club",
            lemmas=("plays for", "club", "team"),
        )
        catalog.add_relation(
            "rel:album_by",
            "type:album",
            "type:musician",
            lemmas=("album by", "recorded by", "artist"),
            cardinality=Cardinality.MANY_TO_ONE,
        )

        actors = persons_by_role["actor"]
        directors = persons_by_role["director"]
        producers = persons_by_role["producer"]
        novelists = persons_by_role["novelist"]
        musicians = persons_by_role["musician"]
        footballers = persons_by_role["footballer"]

        for movie in movies:
            if directors:
                catalog.add_tuple("rel:directed", movie, rng.choice(directors))
            if actors:
                count = rng.randint(*self.config.actors_per_movie)
                for actor in rng.sample(actors, min(count, len(actors))):
                    catalog.add_tuple("rel:acted_in", movie, actor)
            if producers:
                count = rng.randint(*self.config.producers_per_movie)
                for producer in rng.sample(producers, min(count, len(producers))):
                    catalog.add_tuple("rel:produced", movie, producer)
        for novel in novels:
            if novelists:
                catalog.add_tuple("rel:wrote", novel, rng.choice(novelists))
        for index, country in enumerate(countries):
            count = rng.randint(*self.config.languages_per_country)
            pool = [languages[index % len(languages)]]
            while len(pool) < count:
                extra = rng.choice(languages)
                if extra not in pool:
                    pool.append(extra)
            for language in pool:
                catalog.add_tuple("rel:official_language", country, language)
        city_country: dict[str, str] = {}
        per_country = self.config.cities_per_country
        for index, city in enumerate(cities):
            country = countries[index // per_country]
            catalog.add_tuple("rel:located_in", city, country)
            city_country[city] = country
        for entity in catalog.entities.all_entities():
            if not entity.entity_id.startswith("ent:person:"):
                continue
            if cities and rng.random() < self.config.born_in_prob:
                catalog.add_tuple("rel:born_in", entity.entity_id, rng.choice(cities))
        for footballer in footballers:
            if clubs:
                catalog.add_tuple("rel:plays_for", footballer, rng.choice(clubs))
        for album in albums:
            if musicians:
                catalog.add_tuple("rel:album_by", album, rng.choice(musicians))

    # ------------------------------------------------------------------
    # redundant alias categories
    # ------------------------------------------------------------------
    def _add_alias_categories(self, catalog: Catalog, rng: random.Random) -> None:
        """Create near-duplicate sibling categories for a fraction of cats.

        The alias shares the original's parents and ~``alias_member_prob`` of
        its members, with a paraphrased lemma ("1990s films" → "films of the
        1990s").  Nothing is generated when ``alias_category_fraction`` is 0.
        """
        if self.config.alias_category_fraction <= 0.0:
            return
        categories = [
            type_id
            for type_id in sorted(catalog.types.topological_order())
            if type_id.startswith("type:cat:")
        ]
        for category in categories:
            members = catalog.entities_of_type(category)
            if len(members) < 4:
                continue
            if rng.random() >= self.config.alias_category_fraction:
                continue
            alias = f"{category}_alias"
            lemmas = catalog.types.lemmas(category)
            alias_lemmas = tuple(_paraphrase_lemma(lemma) for lemma in lemmas)
            catalog.types.add_type(alias, alias_lemmas)
            for parent in catalog.types.parents(category):
                catalog.types.add_subtype(alias, parent)
            for entity_id in sorted(members):
                if rng.random() < self.config.alias_member_prob:
                    catalog.entities.add_direct_type(entity_id, alias)
            catalog.invalidate_caches()

    # ------------------------------------------------------------------
    # corruption (the annotator's incomplete view)
    # ------------------------------------------------------------------
    def _corrupt(self, catalog: Catalog, rng: random.Random) -> Catalog:
        payload = catalog_to_dict(catalog)
        payload["name"] = f"{catalog.name}-annotator-view"
        for entity_entry in payload["entities"]:
            kept = []
            for type_id in entity_entry["types"]:
                if (
                    len(entity_entry["types"]) > 1
                    and rng.random() < self.config.drop_instance_link_prob
                ):
                    continue
                kept.append(type_id)
            if not kept and entity_entry["types"]:
                kept = [entity_entry["types"][0]]
            entity_entry["types"] = kept
        for type_entry in payload["types"]:
            if type_entry["id"] == ROOT_TYPE_ID:
                continue
            if not type_entry["id"].startswith("type:cat:"):
                continue
            kept_parents = [
                parent
                for parent in type_entry["parents"]
                if rng.random() >= self.config.drop_subtype_link_prob
            ]
            type_entry["parents"] = kept_parents
        payload["facts"] = [
            fact
            for fact in payload["facts"]
            if rng.random() >= self.config.drop_tuple_prob
        ]
        view = catalog_from_dict(payload)
        # Categories that lost every parent re-attach to the root, which is
        # exactly how Appendix F's over-generalisation arises for LCA.
        view.types.ensure_root(ROOT_TYPE_ID)
        view.invalidate_caches()
        return view


def _paraphrase_lemma(lemma: str) -> str:
    """Paraphrase a category lemma for its redundant alias.

    ``"1990s films" -> "films of the 1990s"``; single-token lemmas get a
    "notable" prefix.
    """
    tokens = lemma.split()
    if len(tokens) < 2:
        return f"notable {lemma}"
    return f"{' '.join(tokens[1:])} of the {tokens[0]}"


def generate_world(
    config: SyntheticCatalogConfig | None = None,
) -> SyntheticWorld:
    """Convenience wrapper: ``SyntheticCatalogGenerator(config).generate()``."""
    return SyntheticCatalogGenerator(config).generate()
