"""The :class:`Catalog` facade combining types, entities and relations.

Besides delegation, this class memoises the derived quantities that dominate
annotation cost:

* ``entities_of_type(T)`` — ``E(T)``, the transitive instance set,
* ``type_ancestors(E)`` — ``T(E)``, all type ancestors of an entity,
* ``distance(E, T)`` — ``dist(E, T)``, edges on the shortest ``∈`` + ``⊆*``
  path (paper Section 4.2.3),
* ``relatedness(E, T)`` — the missing-link repair quantity
  ``min_{T' ∋ E} |E(T') ∩ E(T)| / |E(T')|``.

Caches are invalidated wholesale by :meth:`Catalog.invalidate_caches`; all
mutating helpers on the facade call it automatically.  Mutating the underlying
stores directly after heavy querying is allowed but requires a manual
invalidation — the builder and generator follow the build-then-query pattern
so this never arises in library code.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.catalog.entities import Entity, EntityStore
from repro.catalog.errors import UnknownIdError
from repro.catalog.relations import Cardinality, Relation, RelationStore
from repro.catalog.types import Type, TypeHierarchy


class Catalog:
    """A knowledge catalog of types, entities and binary relations."""

    def __init__(
        self,
        types: TypeHierarchy | None = None,
        entities: EntityStore | None = None,
        relations: RelationStore | None = None,
        name: str = "catalog",
    ) -> None:
        self.types = types if types is not None else TypeHierarchy()
        self.entities = entities if entities is not None else EntityStore()
        self.relations = relations if relations is not None else RelationStore()
        self.name = name
        self._entities_of_type: dict[str, frozenset[str]] = {}
        self._type_ancestors: dict[str, frozenset[str]] = {}
        self._distance: dict[tuple[str, str], float] = {}
        self._min_instance_distance: dict[str, float] = {}

    # ------------------------------------------------------------------
    # mutation helpers (invalidate caches)
    # ------------------------------------------------------------------
    def add_type(self, type_id: str, lemmas: Iterable[str] = ()) -> Type:
        self.invalidate_caches()
        return self.types.add_type(type_id, lemmas)

    def add_subtype(self, child: str, parent: str) -> None:
        self.invalidate_caches()
        self.types.add_subtype(child, parent)

    def add_entity(
        self,
        entity_id: str,
        lemmas: Iterable[str] = (),
        direct_types: Iterable[str] = (),
    ) -> Entity:
        direct_types = tuple(direct_types)
        for type_id in direct_types:
            if type_id not in self.types:
                raise UnknownIdError("type", type_id)
        self.invalidate_caches()
        return self.entities.add_entity(entity_id, lemmas, direct_types)

    def add_relation(
        self,
        relation_id: str,
        subject_type: str,
        object_type: str,
        lemmas: Iterable[str] = (),
        cardinality: Cardinality | str = Cardinality.MANY_TO_MANY,
    ) -> Relation:
        for type_id in (subject_type, object_type):
            if type_id not in self.types:
                raise UnknownIdError("type", type_id)
        self.invalidate_caches()
        return self.relations.add_relation(
            relation_id, subject_type, object_type, lemmas, cardinality
        )

    def add_tuple(self, relation_id: str, subject: str, object_: str) -> None:
        for entity_id in (subject, object_):
            if entity_id not in self.entities:
                raise UnknownIdError("entity", entity_id)
        self.invalidate_caches()
        self.relations.add_tuple(relation_id, subject, object_)

    def invalidate_caches(self) -> None:
        """Drop all memoised derived quantities."""
        self._entities_of_type.clear()
        self._type_ancestors.clear()
        self._distance.clear()
        self._min_instance_distance.clear()

    # ------------------------------------------------------------------
    # derived queries
    # ------------------------------------------------------------------
    def entities_of_type(self, type_id: str) -> frozenset[str]:
        """``E(T)``: entities that are transitive instances of ``type_id``."""
        cached = self._entities_of_type.get(type_id)
        if cached is not None:
            return cached
        if type_id not in self.types:
            raise UnknownIdError("type", type_id)
        members: set[str] = set(self.entities.direct_instances(type_id))
        for descendant in self.types.descendants(type_id):
            members.update(self.entities.direct_instances(descendant))
        result = frozenset(members)
        self._entities_of_type[type_id] = result
        return result

    def type_ancestors(self, entity_id: str) -> frozenset[str]:
        """``T(E)``: all types the entity transitively belongs to."""
        cached = self._type_ancestors.get(entity_id)
        if cached is not None:
            return cached
        entity = self.entities.get(entity_id)
        ancestors: set[str] = set()
        for type_id in entity.direct_types:
            ancestors.add(type_id)
            ancestors.update(self.types.ancestors(type_id))
        result = frozenset(ancestors)
        self._type_ancestors[entity_id] = result
        return result

    def is_instance(self, entity_id: str, type_id: str) -> bool:
        """``E ∈+ T`` test."""
        return type_id in self.type_ancestors(entity_id)

    def distance(self, entity_id: str, type_id: str) -> float:
        """``dist(E, T)``: edges (one ``∈`` then ``⊆*``) on the shortest path.

        Returns ``math.inf`` when ``E ∉+ T`` — the paper's convention for
        unreachable types.
        """
        key = (entity_id, type_id)
        cached = self._distance.get(key)
        if cached is not None:
            return cached
        entity = self.entities.get(entity_id)
        if type_id not in self.types:
            raise UnknownIdError("type", type_id)
        best = math.inf
        for direct in entity.direct_types:
            hops = self.types.hops_up(direct, type_id)
            if hops is not None:
                best = min(best, 1 + hops)
        self._distance[key] = best
        return best

    def min_instance_distance(self, type_id: str) -> float:
        """``min_{E' ∈ E(T)} dist(E', T)`` — denominator of the repair feature.

        For catalogs where entities attach directly to the type this is 1.
        Returns ``math.inf`` for an instance-less type.
        """
        cached = self._min_instance_distance.get(type_id)
        if cached is not None:
            return cached
        best = math.inf
        for entity_id in self.entities_of_type(type_id):
            best = min(best, self.distance(entity_id, type_id))
            if best == 1:
                break
        self._min_instance_distance[type_id] = best
        return best

    def relatedness(self, entity_id: str, type_id: str) -> float:
        """Missing-link evidence that ``E ∈+ T`` despite no catalog path.

        Computes ``min_{T' : E ∈ T'} |E(T') ∩ E(T)| / |E(T')|`` over the
        immediate parent types ``T'`` of the entity (paper Section 4.2.3,
        "Missing links").  Returns 0.0 when the entity has no direct types.
        """
        entity = self.entities.get(entity_id)
        if type_id not in self.types:
            raise UnknownIdError("type", type_id)
        target = self.entities_of_type(type_id)
        worst = math.inf
        for direct in entity.direct_types:
            members = self.entities_of_type(direct)
            if not members:
                overlap = 0.0
            else:
                overlap = len(members & target) / len(members)
            worst = min(worst, overlap)
        return 0.0 if worst is math.inf else worst

    def type_idf_specificity(self, type_id: str) -> float:
        """IDF-style specificity ``log(|E| / |E(T)|)`` (paper Section 4.2.3).

        The paper defines specificity as the raw ratio ``|E|/|E(T)|``; we damp
        it with a log (as IR systems do) so that one feature cannot dominate
        the linear model.  An instance-less type gets the maximum specificity
        observed for singleton types.
        """
        total = max(len(self.entities), 1)
        members = len(self.entities_of_type(type_id))
        return math.log(total / max(members, 1))

    def least_common_ancestors(self, type_ids: Iterable[str]) -> set[str]:
        """Minimal common ancestor types of the given set (LCA in a DAG)."""
        type_ids = list(type_ids)
        if not type_ids:
            return set()
        common: set[str] | None = None
        for type_id in type_ids:
            ancestors = self.types.ancestors(type_id, include_self=True)
            common = ancestors if common is None else common & ancestors
        if not common:
            return set()
        return self.types.minimal_elements(common)

    # ------------------------------------------------------------------
    # summary
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Basic size statistics, YAGO-style (entities / types / relations)."""
        tuple_total = sum(
            self.relations.tuple_count(r) for r in self.relations
        )
        return {
            "types": len(self.types),
            "entities": len(self.entities),
            "relations": len(self.relations),
            "tuples": tuple_total,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        stats = self.stats()
        return (
            f"Catalog(name={self.name!r}, types={stats['types']}, "
            f"entities={stats['entities']}, relations={stats['relations']}, "
            f"tuples={stats['tuples']})"
        )
