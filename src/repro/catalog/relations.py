"""Relation store: named binary relations with schemas and ground tuples.

A relation ``B`` has a schema ``B(T1, T2)`` over catalog types and a set of
tuples ``B(E1, E2)``.  The annotator's φ4 potential needs participation
statistics (what fraction of ``E(T1)`` appears as a subject of ``B``) and the
φ5 potential needs fast tuple membership plus functionality tests ("is there a
tuple ``B(E1, E2')`` with ``E2' != E2``" for one-to-one / many-to-one
relations).  Both directions are indexed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.catalog.errors import DuplicateIdError, UnknownIdError


class Cardinality(enum.Enum):
    """Cardinality class of a binary relation."""

    MANY_TO_MANY = "many_to_many"
    ONE_TO_MANY = "one_to_many"
    MANY_TO_ONE = "many_to_one"
    ONE_TO_ONE = "one_to_one"

    @property
    def subject_functional(self) -> bool:
        """True when each subject has at most one object (1:1 or N:1)."""
        return self in (Cardinality.ONE_TO_ONE, Cardinality.MANY_TO_ONE)

    @property
    def object_functional(self) -> bool:
        """True when each object has at most one subject (1:1 or 1:N)."""
        return self in (Cardinality.ONE_TO_ONE, Cardinality.ONE_TO_MANY)


@dataclass
class Relation:
    """Schema-level description of a binary relation ``B(T1, T2)``."""

    relation_id: str
    subject_type: str
    object_type: str
    lemmas: tuple[str, ...] = field(default_factory=tuple)
    cardinality: Cardinality = Cardinality.MANY_TO_MANY

    def __post_init__(self) -> None:
        if not self.relation_id:
            raise ValueError("relation_id must be a non-empty string")
        self.lemmas = tuple(self.lemmas)
        if isinstance(self.cardinality, str):
            self.cardinality = Cardinality(self.cardinality)


class RelationStore:
    """Mutable collection of relations and their tuples."""

    def __init__(self) -> None:
        self._relations: dict[str, Relation] = {}
        self._tuples: dict[str, set[tuple[str, str]]] = {}
        self._by_subject: dict[str, dict[str, set[str]]] = {}
        self._by_object: dict[str, dict[str, set[str]]] = {}
        self._entity_pair_index: dict[tuple[str, str], set[str]] = {}

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_relation(
        self,
        relation_id: str,
        subject_type: str,
        object_type: str,
        lemmas: Iterable[str] = (),
        cardinality: Cardinality | str = Cardinality.MANY_TO_MANY,
    ) -> Relation:
        if relation_id in self._relations:
            raise DuplicateIdError("relation", relation_id)
        relation = Relation(
            relation_id=relation_id,
            subject_type=subject_type,
            object_type=object_type,
            lemmas=tuple(lemmas),
            cardinality=(
                Cardinality(cardinality)
                if isinstance(cardinality, str)
                else cardinality
            ),
        )
        self._relations[relation_id] = relation
        self._tuples[relation_id] = set()
        self._by_subject[relation_id] = {}
        self._by_object[relation_id] = {}
        return relation

    def add_tuple(self, relation_id: str, subject: str, object_: str) -> None:
        """Record the fact ``relation_id(subject, object_)`` (idempotent)."""
        if relation_id not in self._relations:
            raise UnknownIdError("relation", relation_id)
        pair = (subject, object_)
        if pair in self._tuples[relation_id]:
            return
        self._tuples[relation_id].add(pair)
        self._by_subject[relation_id].setdefault(subject, set()).add(object_)
        self._by_object[relation_id].setdefault(object_, set()).add(subject)
        self._entity_pair_index.setdefault(pair, set()).add(relation_id)

    def remove_tuple(self, relation_id: str, subject: str, object_: str) -> bool:
        """Delete a tuple; returns ``True`` if it existed.

        The synthetic generator uses this to model catalog incompleteness.
        """
        if relation_id not in self._relations:
            raise UnknownIdError("relation", relation_id)
        pair = (subject, object_)
        if pair not in self._tuples[relation_id]:
            return False
        self._tuples[relation_id].discard(pair)
        self._by_subject[relation_id][subject].discard(object_)
        self._by_object[relation_id][object_].discard(subject)
        relations = self._entity_pair_index.get(pair)
        if relations is not None:
            relations.discard(relation_id)
            if not relations:
                del self._entity_pair_index[pair]
        return True

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, relation_id: str) -> bool:
        return relation_id in self._relations

    def __len__(self) -> int:
        return len(self._relations)

    def __iter__(self) -> Iterator[str]:
        return iter(self._relations)

    def get(self, relation_id: str) -> Relation:
        try:
            return self._relations[relation_id]
        except KeyError:
            raise UnknownIdError("relation", relation_id) from None

    def tuples(self, relation_id: str) -> frozenset[tuple[str, str]]:
        if relation_id not in self._relations:
            raise UnknownIdError("relation", relation_id)
        return frozenset(self._tuples[relation_id])

    def tuple_count(self, relation_id: str) -> int:
        if relation_id not in self._relations:
            raise UnknownIdError("relation", relation_id)
        return len(self._tuples[relation_id])

    def has_tuple(self, relation_id: str, subject: str, object_: str) -> bool:
        if relation_id not in self._relations:
            raise UnknownIdError("relation", relation_id)
        return (subject, object_) in self._tuples[relation_id]

    def objects_of(self, relation_id: str, subject: str) -> frozenset[str]:
        """All ``E2`` with ``relation_id(subject, E2)``."""
        if relation_id not in self._relations:
            raise UnknownIdError("relation", relation_id)
        return frozenset(self._by_subject[relation_id].get(subject, frozenset()))

    def subjects_of(self, relation_id: str, object_: str) -> frozenset[str]:
        """All ``E1`` with ``relation_id(E1, object_)``."""
        if relation_id not in self._relations:
            raise UnknownIdError("relation", relation_id)
        return frozenset(self._by_object[relation_id].get(object_, frozenset()))

    def participating_subjects(self, relation_id: str) -> frozenset[str]:
        if relation_id not in self._relations:
            raise UnknownIdError("relation", relation_id)
        return frozenset(
            s for s, objs in self._by_subject[relation_id].items() if objs
        )

    def participating_objects(self, relation_id: str) -> frozenset[str]:
        if relation_id not in self._relations:
            raise UnknownIdError("relation", relation_id)
        return frozenset(o for o, subs in self._by_object[relation_id].items() if subs)

    def relations_between(self, subject: str, object_: str) -> frozenset[str]:
        """Relation ids with a tuple ``(subject, object_)`` in that order."""
        return frozenset(self._entity_pair_index.get((subject, object_), frozenset()))

    def all_relations(self) -> list[Relation]:
        return list(self._relations.values())

    def violates_functionality(
        self, relation_id: str, subject: str, object_: str
    ) -> bool:
        """True when the relation's cardinality contradicts the pair.

        This mirrors the second φ5 feature (paper Section 4.2.5): for a
        one-to-one or many-to-one relation, a known tuple ``B(subject, E')``
        with ``E' != object_`` argues *against* labelling the row with
        ``(subject, object_)``; symmetrically for one-to-many relations.
        """
        relation = self.get(relation_id)
        if relation.cardinality.subject_functional:
            others = self._by_subject[relation_id].get(subject, ())
            for existing in others:
                if existing != object_:
                    return True
        if relation.cardinality.object_functional:
            others = self._by_object[relation_id].get(object_, ())
            for existing in others:
                if existing != subject:
                    return True
        return False
